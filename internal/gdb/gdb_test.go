package gdb

import (
	"math/rand"
	"testing"

	"gqs/internal/core"
	"gqs/internal/graph"
)

func TestRegistry(t *testing.T) {
	reg := Registry()
	if len(reg) != 4 {
		t.Fatalf("registry size %d", len(reg))
	}
	if reg[0].Name != "neo4j" || !reg[2].RequiresSchema {
		t.Errorf("registry content wrong: %+v", reg)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"neo4j", "memgraph", "kuzu", "falkordb", "reference"} {
		c, err := ByName(name)
		if err != nil || c.Name() != name {
			t.Errorf("ByName(%s): %v, %v", name, c, err)
		}
	}
	if _, err := ByName("oracle"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestDialectFlags(t *testing.T) {
	if !NewNeo4jSim().RelUniqueness() || !NewNeo4jSim().ProvidesDBLabels() {
		t.Error("neo4j dialect flags")
	}
	if !NewMemgraphSim().RelUniqueness() || NewMemgraphSim().ProvidesDBLabels() {
		t.Error("memgraph dialect flags")
	}
	if NewKuzuSim().RelUniqueness() || NewKuzuSim().ProvidesDBLabels() {
		t.Error("kuzu dialect flags")
	}
	if NewFalkorDBSim().RelUniqueness() || !NewFalkorDBSim().ProvidesDBLabels() {
		t.Error("falkordb dialect flags")
	}
}

func TestKuzuRequiresSchema(t *testing.T) {
	g := graph.New()
	g.NewNode("L0")
	if err := NewKuzuSim().Reset(g, nil); err == nil {
		t.Error("kuzu must require schema information (§4)")
	}
	r := rand.New(rand.NewSource(1))
	g2, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 4, MaxRels: 4})
	if err := NewKuzuSim().Reset(g2, schema); err != nil {
		t.Errorf("kuzu reset with schema: %v", err)
	}
}

func TestExecuteAndFaultAttribution(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 5, MaxRels: 10})
	mg := NewMemgraphSim()
	if err := mg.Reset(g, schema); err != nil {
		t.Fatal(err)
	}
	// A healthy query passes with no attribution.
	res, err := mg.Execute(`MATCH (n) RETURN count(*) AS c`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("healthy query: %v %v", res, err)
	}
	if mg.TriggeredBug() != nil {
		t.Error("no bug must be attributed")
	}
	// The Figure 9 query triggers the hang fault.
	_, err = mg.Execute(`WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0`)
	if err == nil {
		t.Fatal("Figure 9 query must hang on memgraph-sim")
	}
	if b := mg.TriggeredBug(); b == nil || b.ID != "MG-O1" {
		t.Errorf("attributed bug = %v, want MG-O1", b)
	}
	// The reference connector runs the same query fine.
	ref := NewReference()
	ref.Reset(g, schema)
	res, err = ref.Execute(`WITH replace('ts15G', '', 'U11sWFvRw') AS a0 RETURN a0`)
	if err != nil || res.Rows[0][0].AsString() != "ts15G" {
		t.Errorf("reference replace semantics: %v %v", res, err)
	}
}

func TestFigure17OnFalkorSim(t *testing.T) {
	g := graph.New()
	a := g.NewNode("L12")
	b := g.NewNode("L0")
	rel, _ := g.NewRel(a.ID, b.ID, "T0")
	fk := NewFalkorDBSim()
	fk.Reset(g, nil)
	q := `UNWIND [1,2,3] AS a0 MATCH (n2 :L12)-[r1]-(n3) WHERE r1.id = ` +
		itoa(rel.ID) + ` RETURN a0`
	res, err := fk.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("FK-L2 must truncate to one row, got %d", res.Len())
	}
	if bug := fk.TriggeredBug(); bug == nil || bug.ID != "FK-L2" {
		t.Errorf("attribution = %v", bug)
	}
}

func itoa(i int64) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func TestClose(t *testing.T) {
	s := NewReference()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Execute(`RETURN 1`); err == nil {
		t.Error("closed connector must reject Execute")
	}
	g := graph.New()
	if err := s.Reset(g, nil); err == nil {
		t.Error("closed connector must reject Reset")
	}
}

// TestRunnerNoFalsePositivesOnReference is the false-positive control:
// GQS against the pristine reference engine must report zero bugs.
func TestRunnerNoFalsePositivesOnReference(t *testing.T) {
	ref := NewReference()
	cfg := core.DefaultRunnerConfig()
	cfg.Seed = 99
	cfg.Graph = graph.GenConfig{MaxNodes: 10, MaxRels: 40}
	rn := core.NewRunner(ref, cfg)
	stats, err := rn.Run(5, func(tc *core.TestCase) {
		if tc.Verdict == core.VerdictLogicBug || tc.Verdict == core.VerdictErrorBug {
			t.Errorf("false positive on reference engine:\n%s\nexpected %v\nactual %v\nerr %v",
				tc.Query, tc.Expected, tc.Actual, tc.Err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 || stats.Passes == 0 {
		t.Errorf("campaign ran nothing: %+v", stats)
	}
	if stats.Skips > stats.Queries/4 {
		t.Errorf("too many skips: %+v", stats)
	}
}

// TestRunnerFindsInjectedBugs checks the end-to-end pipeline: GQS against
// the fault-injected simulated GDBs reports bugs, attributed to catalog
// entries.
func TestRunnerFindsInjectedBugs(t *testing.T) {
	foundAnywhere := map[string]bool{}
	for _, sim := range All() {
		cfg := core.DefaultRunnerConfig()
		cfg.Seed = 7
		cfg.Graph = graph.GenConfig{MaxNodes: 10, MaxRels: 40}
		rn := core.NewRunner(sim, cfg)
		bugs := map[string]bool{}
		_, err := rn.Run(20, func(tc *core.TestCase) {
			if tc.Verdict == core.VerdictLogicBug || tc.Verdict == core.VerdictErrorBug {
				if b := sim.TriggeredBug(); b != nil {
					bugs[b.ID] = true
					foundAnywhere[b.ID] = true
				} else if tc.Verdict == core.VerdictLogicBug {
					t.Errorf("%s: unattributed logic discrepancy:\n%s\nexpected %v\nactual %v",
						sim.Name(), tc.Query, tc.Expected, tc.Actual)
				}
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", sim.Name(), err)
		}
		if len(bugs) == 0 {
			t.Errorf("%s: campaign found no injected bugs", sim.Name())
		}
		t.Logf("%s: found %d distinct bugs: %v", sim.Name(), len(bugs), keys(bugs))
	}
	if len(foundAnywhere) < 6 {
		t.Errorf("only %d distinct bugs found across all GDBs", len(foundAnywhere))
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
