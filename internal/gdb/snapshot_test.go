package gdb

import (
	"context"
	"testing"

	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/graph"
)

// legacyOnly wraps a Sim exposing only the Target + PreparedTarget
// surface: ResetSnapshot is hidden, so the runner falls back to the
// deep-clone Reset path. It is the control arm of the COW campaign
// differential below.
type legacyOnly struct{ s *Sim }

func (l legacyOnly) Name() string { return l.s.Name() }
func (l legacyOnly) Reset(g *graph.Graph, schema *graph.Schema) error {
	return l.s.Reset(g, schema)
}
func (l legacyOnly) Execute(q string) (*engine.Result, error) { return l.s.Execute(q) }
func (l legacyOnly) ExecuteCtx(ctx context.Context, q string) (*engine.Result, error) {
	return l.s.ExecuteCtx(ctx, q)
}
func (l legacyOnly) ExecutePrepared(ctx context.Context, pq *engine.PreparedQuery) (*engine.Result, error) {
	return l.s.ExecutePrepared(ctx, pq)
}
func (l legacyOnly) RelUniqueness() bool    { return l.s.RelUniqueness() }
func (l legacyOnly) ProvidesDBLabels() bool { return l.s.ProvidesDBLabels() }

// campaignTrace runs a fixed-seed campaign and records each test case's
// query, verdict, and canonical actual result.
func campaignTrace(t *testing.T, target core.Target, iterations int) []string {
	t.Helper()
	cfg := core.DefaultRunnerConfig()
	cfg.Seed = 17
	cfg.Graph = graph.GenConfig{MaxNodes: 10, MaxRels: 30}
	rn := core.NewRunner(target, cfg)
	var trace []string
	_, err := rn.Run(iterations, func(tc *core.TestCase) {
		line := tc.Query + " | " + tc.Verdict.String()
		if tc.Actual != nil {
			for _, row := range tc.Actual.Canonical() {
				line += " | " + row
			}
		}
		trace = append(trace, line)
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestCampaignCOWMatchesLegacyReset is the campaign-level differential
// for the copy-on-write Reset: the same fixed-seed campaign through the
// snapshot path and through the hidden-ResetSnapshot legacy path must
// produce the identical sequence of queries, verdicts, and results, on
// the clean reference engine and on a fault-injected GDB (whose write
// workload exercises overlay mutation + restore every iteration).
func TestCampaignCOWMatchesLegacyReset(t *testing.T) {
	targets := []struct {
		name         string
		cow, control core.Target
	}{
		{"reference", NewReference(), legacyOnly{NewReference()}},
		{All()[0].Name(), All()[0], legacyOnly{All()[0]}},
	}
	for _, tt := range targets {
		cowTrace := campaignTrace(t, tt.cow, 8)
		legacyTrace := campaignTrace(t, tt.control, 8)
		if len(cowTrace) == 0 {
			t.Fatalf("%s: campaign ran no test cases", tt.name)
		}
		if len(cowTrace) != len(legacyTrace) {
			t.Fatalf("%s: trace lengths differ: cow=%d legacy=%d",
				tt.name, len(cowTrace), len(legacyTrace))
		}
		for i := range cowTrace {
			if cowTrace[i] != legacyTrace[i] {
				t.Fatalf("%s: case %d diverged\ncow:    %s\nlegacy: %s",
					tt.name, i, cowTrace[i], legacyTrace[i])
			}
		}
	}
}
