package gdb

import (
	"testing"
)

func TestFactoryBuildsIsolatedInstances(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "neo4j", Seed: 5})
	a, err := connect(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := connect(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("factory must build a fresh instance per call")
	}
	ra, rb := a.(*reusable), b.(*reusable)
	if ra.sim.Engine() == rb.sim.Engine() {
		t.Fatal("instances must not share an engine")
	}
}

func TestFactorySeedsEnginePerShard(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "reference", Seed: 5})
	randOf := func(shard int) float64 {
		t.Helper()
		c, err := connect(shard)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute("RETURN rand() AS r")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].AsFloat()
	}
	if randOf(0) != randOf(0) {
		t.Fatal("same shard must replay the same rand() stream")
	}
	if randOf(0) == randOf(1) {
		t.Fatal("different shards must get different rand() streams")
	}
}

func TestFactoryFlakyWrapper(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "memgraph", Seed: 9, FlakyRate: 0.5})
	c, err := connect(3)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := c.(*reusable)
	if !ok {
		t.Fatalf("factory must return a reusable connector, got %T", c)
	}
	if r.flaky == nil {
		t.Fatal("FlakyRate > 0 must wrap the sim in a flaky injector")
	}
	if _, ok := r.Connector.(*Flaky); !ok {
		t.Fatalf("FlakyRate > 0 must route calls through the flaky wrapper, got %T", r.Connector)
	}
}

// TestFactoryReuseMatchesFreshInstance pins the SeedShard contract: a
// connector reused for shard j behaves byte-identically to a freshly
// built factory(j) instance, both for the engine's rand() stream and for
// the flaky injector's failure sequence.
func TestFactoryReuseMatchesFreshInstance(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "reference", Seed: 11, FlakyRate: 0.4})
	outcomes := func(c Connector) []string {
		t.Helper()
		var out []string
		for i := 0; i < 20; i++ {
			res, err := c.Execute("RETURN rand() AS r")
			switch {
			case err != nil:
				out = append(out, "err:"+err.Error())
			default:
				out = append(out, res.Rows[0][0].String())
			}
		}
		return out
	}
	fresh, err := connect(7)
	if err != nil {
		t.Fatal(err)
	}
	reusedC, err := connect(0)
	if err != nil {
		t.Fatal(err)
	}
	// Drain some of shard 0's streams, then re-seed for shard 7.
	outcomes(reusedC)
	reusedC.(*reusable).SeedShard(7)
	want, got := outcomes(fresh), outcomes(reusedC)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("call %d: fresh instance got %s, reused instance got %s", i, want[i], got[i])
		}
	}
}

func TestFactoryUnknownGDB(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "orientdb"})
	if _, err := connect(0); err == nil {
		t.Fatal("unknown GDB must error")
	}
}
