package gdb

import (
	"testing"
)

func TestFactoryBuildsIsolatedInstances(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "neo4j", Seed: 5})
	a, err := connect(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := connect(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("factory must build a fresh instance per call")
	}
	sa, sb := a.(*Sim), b.(*Sim)
	if sa.Engine() == sb.Engine() {
		t.Fatal("instances must not share an engine")
	}
}

func TestFactorySeedsEnginePerShard(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "reference", Seed: 5})
	randOf := func(shard int) float64 {
		t.Helper()
		c, err := connect(shard)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Execute("RETURN rand() AS r")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows[0][0].AsFloat()
	}
	if randOf(0) != randOf(0) {
		t.Fatal("same shard must replay the same rand() stream")
	}
	if randOf(0) == randOf(1) {
		t.Fatal("different shards must get different rand() streams")
	}
}

func TestFactoryFlakyWrapper(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "memgraph", Seed: 9, FlakyRate: 0.5})
	c, err := connect(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.(*Flaky); !ok {
		t.Fatalf("FlakyRate > 0 must wrap the sim, got %T", c)
	}
}

func TestFactoryUnknownGDB(t *testing.T) {
	connect := NewFactory(FactoryConfig{GDB: "orientdb"})
	if _, err := connect(0); err == nil {
		t.Fatal("unknown GDB must error")
	}
}
