package gdb

import (
	"context"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// corpus generates a graph and synthesizes n query texts over it — the
// same queries a campaign would feed the oracle, so the prepared-path
// tests exercise real planner rewrites (traversal reversal, aggregate
// substitution) rather than hand-picked shapes.
func corpus(t *testing.T, seed int64, n int) (*graph.Graph, *graph.Schema, []string) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 12, MaxRels: 40})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	var out []string
	for tries := 0; len(out) < n && tries < 50*n; tries++ {
		gt := core.SelectGroundTruth(r, g, 6)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			continue
		}
		out = append(out, sq.Text)
	}
	if len(out) < n {
		t.Fatalf("synthesized only %d/%d queries", len(out), n)
	}
	return g, schema, out
}

// fiveDialects returns the four simulated GDBs plus the reference — the
// five dialects one PreparedQuery must be shareable across.
func fiveDialects() []*Sim {
	return append(All(), NewReference())
}

// TestPreparedASTImmutableAcrossDialects pins the tentpole invariant:
// one PreparedQuery executed concurrently on all five dialects leaves
// its AST byte-identical and produces, per dialect, exactly the result
// the sequential text path produces. Run under -race this also proves no
// execution writes to the shared tree.
func TestPreparedASTImmutableAcrossDialects(t *testing.T) {
	g, schema, texts := corpus(t, 77, 12)

	textConns, prepConns := fiveDialects(), fiveDialects()
	for _, c := range append(append([]*Sim{}, textConns...), prepConns...) {
		if err := c.Reset(g, schema); err != nil {
			t.Fatalf("reset %s: %v", c.Name(), err)
		}
	}

	for _, text := range texts {
		pq, err := engine.Prepare(text)
		if err != nil {
			t.Fatalf("prepare %q: %v", text, err)
		}
		before := pq.AST.String()

		// Sequential text path: the per-dialect expectation. Both
		// connector sets execute the same queries in the same order, so
		// their execution-scoped rand()/timestamp() streams line up.
		type outcome struct {
			res *engine.Result
			err error
		}
		want := make([]outcome, len(textConns))
		for i, c := range textConns {
			res, err := c.ExecuteCtx(context.Background(), text)
			want[i] = outcome{res, err}
		}

		// Concurrent prepared path: every dialect runs the same shared
		// PreparedQuery at once.
		got := make([]outcome, len(prepConns))
		var wg sync.WaitGroup
		for i, c := range prepConns {
			wg.Add(1)
			go func(i int, c *Sim) {
				defer wg.Done()
				res, err := c.ExecutePrepared(context.Background(), pq)
				got[i] = outcome{res, err}
			}(i, c)
		}
		wg.Wait()

		for i := range want {
			name := textConns[i].Name()
			switch {
			case (want[i].err == nil) != (got[i].err == nil):
				t.Fatalf("%s: %q: text err=%v, prepared err=%v", name, text, want[i].err, got[i].err)
			case want[i].err != nil:
				if want[i].err.Error() != got[i].err.Error() {
					t.Fatalf("%s: %q: text err=%v, prepared err=%v", name, text, want[i].err, got[i].err)
				}
			case !want[i].res.Equal(got[i].res):
				t.Fatalf("%s: %q: prepared result diverged from text path\ntext: %v\nprepared: %v",
					name, text, want[i].res, got[i].res)
			}
		}

		if after := pq.AST.String(); after != before {
			t.Fatalf("AST mutated by execution of %q:\nbefore: %s\nafter:  %s", text, before, after)
		}
	}
}

// TestPreparedFeaturesMatchTextAnalysis is the feature-identity
// regression test: the vector Prepare computes (and fault selection on
// every target consumes) must equal what the text path's
// metrics.Analyze computed, field for field, and both must select the
// same catalog bug on every simulated GDB. Prepare re-parses the printed
// text precisely to keep this equality — analyzing the synthesizer's own
// tree diverges on shapes the parser normalizes (e.g. negative literals
// fold from Unary(Neg, Lit) into one Literal, changing expression depth).
func TestPreparedFeaturesMatchTextAnalysis(t *testing.T) {
	_, _, texts := corpus(t, 123, 150)
	sims := fiveDialects()
	for _, text := range texts {
		pq, err := engine.Prepare(text)
		if err != nil {
			t.Fatalf("prepare %q: %v", text, err)
		}
		ta := metrics.Analyze(text)
		if !reflect.DeepEqual(pq.Features, ta) {
			t.Fatalf("feature vector diverged for %q:\nprepared: %+v\ntext:     %+v", text, pq.Features, ta)
		}
		for _, sim := range sims {
			bp := sim.bugs.Select(pq.Features, nil)
			bt := sim.bugs.Select(ta, nil)
			if bp != bt {
				t.Fatalf("%s: fault selection diverged for %q: prepared=%v text=%v", sim.Name(), text, bp, bt)
			}
		}
	}
}
