// Package gdb provides the "GDB under test" abstraction of §4
// ("Integrating Different GDBs") and the four simulated systems this
// reproduction tests. Each simulated GDB is the reference engine
// configured with that system's documented dialect quirks plus its
// injected-fault catalog; a pristine reference connector (no faults) is
// the control.
package gdb

import (
	"context"
	"fmt"

	"gqs/internal/engine"
	"gqs/internal/faults"
	"gqs/internal/graph"
)

// Connector is the driver interface a GDB under test exposes, mirroring
// the paper's per-GDB integration layer.
type Connector interface {
	Name() string
	// Reset clears the instance and loads the graph — the paper's tool
	// restarts the database for each new graph (§5.4.4).
	Reset(g *graph.Graph, schema *graph.Schema) error
	// ResetSnapshot is Reset over a shared immutable graph.Snapshot: the
	// copy-on-write restart path. All connectors of one oracle check
	// share the snapshot (and its one-time index build); each instance
	// overlays its own writes and drops them on the next reset, so
	// restoring state between checks is O(1) for read-only workloads.
	// Behaviour is otherwise identical to Reset with the sealed graph.
	ResetSnapshot(snap *graph.Snapshot, schema *graph.Schema) error
	Execute(query string) (*engine.Result, error)
	// ExecuteCtx runs the query under a context so the harness watchdog
	// can cancel it; implementations must return (engine.ErrCanceled or
	// the in-flight fault's error) promptly after cancellation.
	ExecuteCtx(ctx context.Context, query string) (*engine.Result, error)
	// ExecutePrepared runs an already parsed-and-analyzed query — the
	// prepared execution path that removes the per-target parse tax. The
	// PreparedQuery is shared: implementations must treat its AST and
	// Features as read-only, and may run it concurrently with other
	// connectors executing the same value. Behaviour is otherwise
	// identical to ExecuteCtx(ctx, pq.Text).
	ExecutePrepared(ctx context.Context, pq *engine.PreparedQuery) (*engine.Result, error)
	// RelUniqueness reports whether the dialect enforces relationship
	// uniqueness (§4: FalkorDB and Kùzu deviate).
	RelUniqueness() bool
	// ProvidesDBLabels reports whether CALL db.labels() exists.
	ProvidesDBLabels() bool
	// TriggeredBug returns the injected fault exercised by the most
	// recent Execute, if any. Experiments use it for ground-truth
	// attribution and deduplication; testers must not.
	TriggeredBug() *faults.Bug
	Close() error
}

// Info describes one tested GDB, reproducing Table 2.
type Info struct {
	Name           string
	GitHubStars    string
	InitialRelease int
	TestedVersion  string
	LoC            string
	RequiresSchema bool // Kùzu needs schema information before loading (§4)
}

// Registry returns the Table 2 rows.
func Registry() []Info {
	return []Info{
		{Name: "neo4j", GitHubStars: "13.2K", InitialRelease: 2007, TestedVersion: "5.18, 5.20, 5.21.2 (simulated)", LoC: "1.4M"},
		{Name: "memgraph", GitHubStars: "2.4K", InitialRelease: 2017, TestedVersion: "2.13, 2.14.1, 2.15, 2.17 (simulated)", LoC: "0.2M"},
		{Name: "kuzu", GitHubStars: "1.3K", InitialRelease: 2022, TestedVersion: "0.4.2, 0.7.1 (simulated)", LoC: "11.9M", RequiresSchema: true},
		{Name: "falkordb", GitHubStars: "651", InitialRelease: 2023, TestedVersion: "4.2.0 (simulated)", LoC: "2.8M"},
	}
}

// Sim is a simulated GDB: the reference engine plus dialect quirks and an
// injected-fault catalog.
type Sim struct {
	name           string
	eng            *engine.Engine
	bugs           *faults.Set
	requiresSchema bool
	lastBug        *faults.Bug
	closed         bool
	live           bool
}

// options for constructing simulated GDBs.
type simConfig struct {
	dialect        engine.Dialect
	bugs           *faults.Set
	requiresSchema bool
	reverseScan    bool
}

func newSim(name string, cfg simConfig) *Sim {
	return &Sim{
		name: name,
		eng: engine.New(engine.Options{
			Dialect:     cfg.dialect,
			ReverseScan: cfg.reverseScan,
		}),
		bugs:           cfg.bugs,
		requiresSchema: cfg.requiresSchema,
	}
}

// NewNeo4jSim builds the Neo4j simulacrum: reference dialect (relationship
// uniqueness, db.labels), on-disk-style planner, Neo4j fault catalog.
func NewNeo4jSim() *Sim {
	return newSim("neo4j", simConfig{
		dialect: engine.Dialect{Name: "neo4j", RelUniqueness: true, ProvidesDBLabels: true},
		bugs:    faults.Neo4j(),
	})
}

// NewMemgraphSim builds the Memgraph simulacrum: reference uniqueness,
// no db.labels procedure, and a different scan order — its "in-memory"
// planner produces rows in a different order than the Neo4j simulacrum,
// one of the false-positive sources for differential testers (§5.4.3).
func NewMemgraphSim() *Sim {
	return newSim("memgraph", simConfig{
		dialect:     engine.Dialect{Name: "memgraph", RelUniqueness: true, ProvidesDBLabels: false},
		bugs:        faults.Memgraph(),
		reverseScan: true,
	})
}

// NewKuzuSim builds the Kùzu simulacrum: no relationship uniqueness, no
// db.labels, and schema-first loading (§4: Kùzu requires the schema
// before initializing a random graph).
func NewKuzuSim() *Sim {
	return newSim("kuzu", simConfig{
		dialect:        engine.Dialect{Name: "kuzu", RelUniqueness: false, ProvidesDBLabels: false, EnforceSchema: true},
		bugs:           faults.Kuzu(),
		requiresSchema: true,
	})
}

// NewFalkorDBSim builds the FalkorDB simulacrum: no relationship
// uniqueness, db.labels available.
func NewFalkorDBSim() *Sim {
	return newSim("falkordb", simConfig{
		dialect: engine.Dialect{Name: "falkordb", RelUniqueness: false, ProvidesDBLabels: true},
		bugs:    faults.FalkorDB(),
	})
}

// NewReference builds the pristine fault-free reference connector.
func NewReference() *Sim {
	return newSim("reference", simConfig{dialect: engine.Reference})
}

// All returns connectors for the four simulated GDBs, in Table 2 order.
func All() []*Sim {
	return []*Sim{NewNeo4jSim(), NewMemgraphSim(), NewKuzuSim(), NewFalkorDBSim()}
}

// ByName builds a simulated GDB by name.
func ByName(name string) (*Sim, error) {
	switch name {
	case "neo4j":
		return NewNeo4jSim(), nil
	case "memgraph":
		return NewMemgraphSim(), nil
	case "kuzu":
		return NewKuzuSim(), nil
	case "falkordb":
		return NewFalkorDBSim(), nil
	case "reference":
		return NewReference(), nil
	default:
		return nil, fmt.Errorf("unknown GDB %q", name)
	}
}

// Name implements Connector.
func (s *Sim) Name() string { return s.name }

// RelUniqueness implements Connector.
func (s *Sim) RelUniqueness() bool { return s.eng.Dialect().RelUniqueness }

// ProvidesDBLabels implements Connector.
func (s *Sim) ProvidesDBLabels() bool { return s.eng.Dialect().ProvidesDBLabels }

// Reset implements Connector: it restarts the simulated instance with a
// fresh copy of the graph.
func (s *Sim) Reset(g *graph.Graph, schema *graph.Schema) error {
	if s.closed {
		return fmt.Errorf("%s: connector is closed", s.name)
	}
	if s.requiresSchema && schema == nil {
		return fmt.Errorf("%s: requires schema information before initializing a graph", s.name)
	}
	s.eng.LoadGraph(g, schema)
	s.lastBug = nil
	return nil
}

// ResetSnapshot implements Connector: the simulated instance restarts
// onto a copy-on-write overlay of the shared snapshot instead of a deep
// copy of the graph.
func (s *Sim) ResetSnapshot(snap *graph.Snapshot, schema *graph.Schema) error {
	if s.closed {
		return fmt.Errorf("%s: connector is closed", s.name)
	}
	if s.requiresSchema && schema == nil {
		return fmt.Errorf("%s: requires schema information before initializing a graph", s.name)
	}
	s.eng.LoadSnapshot(snap, schema)
	s.lastBug = nil
	return nil
}

// SetLiveFaults toggles live fault manifestation: Hang bugs really block
// until the context is canceled, Crash bugs panic inside the connector,
// and per-bug latency is injected — so the harness's watchdog, panic
// isolation, and restart paths are exercised for real. Off (the default)
// keeps the instant simulated manifestation for high-volume experiments.
func (s *Sim) SetLiveFaults(live bool) *Sim {
	s.live = live
	return s
}

// SetPlanExecution toggles the compiled-plan execution path for prepared
// queries (see engine.Options.DisablePlan). Plans and the interpreter are
// behaviour-identical by contract; disabling plans exists for
// differential debugging (`gqs -no-plan`).
func (s *Sim) SetPlanExecution(enabled bool) *Sim {
	s.eng.SetPlanExecution(enabled)
	return s
}

// Execute implements Connector: parse, measure, run, then pass the result
// through the fault catalog.
func (s *Sim) Execute(query string) (*engine.Result, error) {
	return s.ExecuteCtx(context.Background(), query)
}

// ExecuteCtx implements Connector as a compatibility wrapper over the
// prepared path: it prepares (one parse + one analysis) and delegates to
// ExecutePrepared, so text callers and prepared callers take the same
// fault-catalog path and see identical behaviour.
func (s *Sim) ExecuteCtx(ctx context.Context, query string) (*engine.Result, error) {
	pq, err := engine.Prepare(query)
	if err != nil {
		// Unparseable text fails exactly as the engine's own parse would
		// (same parser, same error). Features are nil for such queries, so
		// no catalog fault can trigger — mirror that here.
		if s.closed {
			return nil, fmt.Errorf("%s: connector is closed", s.name)
		}
		s.lastBug = nil
		return nil, err
	}
	return s.ExecutePrepared(ctx, pq)
}

// ExecutePrepared implements Connector. The triggered bug is selected on
// the precomputed feature vector and recorded before it manifests, so
// attribution survives a live crash panicking out of this call or a live
// hang being canceled by the watchdog.
func (s *Sim) ExecutePrepared(ctx context.Context, pq *engine.PreparedQuery) (*engine.Result, error) {
	if s.closed {
		return nil, fmt.Errorf("%s: connector is closed", s.name)
	}
	s.lastBug = nil
	f := pq.Features
	res, err := s.eng.ExecutePrepared(ctx, pq)
	bug := s.bugs.Select(f, err)
	s.lastBug = bug
	if bug == nil {
		return res, err
	}
	if bug.Kind == faults.Logic {
		out, merr := bug.ManifestCtx(ctx, s.live, res, f)
		if merr != nil { // canceled mid-latency: not a manifested result
			return nil, merr
		}
		return out, nil
	}
	_, err = bug.ManifestCtx(ctx, s.live, nil, f)
	return nil, err
}

// TriggeredBug implements Connector.
func (s *Sim) TriggeredBug() *faults.Bug { return s.lastBug }

// Close implements Connector.
func (s *Sim) Close() error {
	s.closed = true
	return nil
}

// Engine exposes the underlying engine for white-box tests.
func (s *Sim) Engine() *engine.Engine { return s.eng }
