package gdb

import (
	"gqs/internal/functions"
)

// FactoryConfig configures NewFactory.
type FactoryConfig struct {
	// GDB is the simulated system to build ("neo4j", "memgraph", "kuzu",
	// "falkordb", "reference").
	GDB string
	// Live makes injected faults manifest for real in every instance
	// (hangs block, crashes panic); see Sim.SetLiveFaults.
	Live bool
	// FlakyRate wraps every instance in a transient-fault injector
	// dropping this fraction of calls (0 disables).
	FlakyRate float64
	// Seed is the campaign seed; each shard's flaky injector derives its
	// own stream from (Seed, shard), so the injected-failure sequence of
	// shard i is the same no matter how many workers run the campaign.
	Seed int64
	// NoPlan forces every instance onto the interpreter for prepared
	// queries (the `gqs -no-plan` escape hatch); behaviour-identical to
	// plan execution by contract, kept for differential debugging.
	NoPlan bool
}

// reusable is the connector NewFactory returns: the simulacrum
// (optionally flaky-wrapped) plus the campaign seed, so every per-shard
// deterministic stream can be re-derived in place. It implements
// SeedShard, the optional interface the parallel executor uses to reuse
// one connector across the successive shards a worker drains, instead of
// constructing a fresh engine + fault catalog per shard.
type reusable struct {
	Connector
	sim   *Sim
	flaky *Flaky // nil when FlakyRate is 0
	seed  int64  // campaign seed
}

// SeedShard re-derives the per-shard deterministic state: the engine's
// rand()/timestamp() stream (including its execution counter) and, when
// present, the flaky injector's failure stream. After SeedShard(i) the
// connector behaves byte-identically to a freshly built factory(i)
// instance — the graph itself is installed by the runner's per-iteration
// Reset, so no stale store state can leak between shards.
func (c *reusable) SeedShard(shard int) {
	c.sim.eng.SetSeed(functions.DeriveSeed(c.seed, int64(shard)))
	if c.flaky != nil {
		c.flaky.reseed(functions.DeriveSeed(c.seed+0x5eed, int64(shard)))
	}
}

// NewFactory returns a connector factory for parallel campaign shards.
// Every call builds an independent simulacrum — its own engine, store,
// and fault catalog — so no mutable state is ever shared across the
// goroutines of a worker pool; the optional Flaky wrapper is seeded per
// shard for worker-count-independent determinism. The returned
// connectors also implement SeedShard (see reusable), letting a worker
// amortize one construction over all the shards it runs.
func NewFactory(cfg FactoryConfig) func(shard int) (Connector, error) {
	return func(shard int) (Connector, error) {
		sim, err := ByName(cfg.GDB)
		if err != nil {
			return nil, err
		}
		sim.SetLiveFaults(cfg.Live)
		sim.SetPlanExecution(!cfg.NoPlan)
		c := &reusable{Connector: sim, sim: sim, seed: cfg.Seed}
		if cfg.FlakyRate > 0 {
			c.flaky = NewFlaky(sim, FlakyConfig{
				ErrorRate:      cfg.FlakyRate,
				ResetErrorRate: cfg.FlakyRate / 2,
			})
			c.Connector = c.flaky
		}
		// Per-shard engine seed keeps rand()/timestamp() streams
		// independent across shards and reproducible per campaign seed.
		c.SeedShard(shard)
		return c, nil
	}
}
