package gdb

import (
	"gqs/internal/functions"
)

// FactoryConfig configures NewFactory.
type FactoryConfig struct {
	// GDB is the simulated system to build ("neo4j", "memgraph", "kuzu",
	// "falkordb", "reference").
	GDB string
	// Live makes injected faults manifest for real in every instance
	// (hangs block, crashes panic); see Sim.SetLiveFaults.
	Live bool
	// FlakyRate wraps every instance in a transient-fault injector
	// dropping this fraction of calls (0 disables).
	FlakyRate float64
	// Seed is the campaign seed; each shard's flaky injector derives its
	// own stream from (Seed, shard), so the injected-failure sequence of
	// shard i is the same no matter how many workers run the campaign.
	Seed int64
}

// NewFactory returns a connector factory for parallel campaign shards.
// Every call builds a fresh simulacrum — its own engine, store, and
// fault catalog — so no mutable state is ever shared across the
// goroutines of a worker pool; the optional Flaky wrapper is seeded per
// shard for worker-count-independent determinism.
func NewFactory(cfg FactoryConfig) func(shard int) (Connector, error) {
	return func(shard int) (Connector, error) {
		sim, err := ByName(cfg.GDB)
		if err != nil {
			return nil, err
		}
		sim.SetLiveFaults(cfg.Live)
		// Per-shard engine seed keeps rand()/timestamp() streams
		// independent across shards and reproducible per campaign seed.
		sim.Engine().SetSeed(functions.DeriveSeed(cfg.Seed, int64(shard)))
		if cfg.FlakyRate <= 0 {
			return sim, nil
		}
		return NewFlaky(sim, FlakyConfig{
			Seed:           functions.DeriveSeed(cfg.Seed+0x5eed, int64(shard)),
			ErrorRate:      cfg.FlakyRate,
			ResetErrorRate: cfg.FlakyRate / 2,
		}), nil
	}
}
