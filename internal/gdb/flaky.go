package gdb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"gqs/internal/engine"
	"gqs/internal/faults"
	"gqs/internal/graph"
)

// TransientError is a connection-level failure — the connection dropped,
// the server was momentarily busy — that says nothing about the query or
// the database's correctness. Retrying the same call may well succeed,
// and a tester must never count one as a bug.
type TransientError struct {
	Reason string
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("transient connector error: %s", e.Reason)
}

// Transient marks the error as retryable; the runner classifies errors
// through this method rather than the concrete type, so user-provided
// connectors can participate by implementing it on their own errors.
func (e *TransientError) Transient() bool { return true }

// IsTransient reports whether err is (or wraps) a transient connector
// error, identified structurally by a `Transient() bool` method.
func IsTransient(err error) bool {
	var tr interface{ Transient() bool }
	return errors.As(err, &tr) && tr.Transient()
}

// transientReasons rotate deterministically through the failure modes a
// flaky network connection produces.
var transientReasons = []string{
	"connection reset by peer",
	"server busy",
	"i/o timeout while reading response header",
}

// FlakyConfig configures the deterministic transient-fault injector.
type FlakyConfig struct {
	// Seed drives the injector's own RNG; the same seed and call
	// sequence reproduce the same injected failures.
	Seed int64
	// ErrorRate is the probability an Execute call fails with a
	// TransientError before reaching the wrapped connector.
	ErrorRate float64
	// ResetErrorRate is the probability a Reset call fails transiently;
	// it exercises the runner's restart-with-backoff path. Zero disables.
	ResetErrorRate float64
	// Latency is added to every call that reaches the wrapped connector,
	// canceled early if the context expires first.
	Latency time.Duration
}

// Flaky wraps a Connector with deterministic, seeded transient-fault
// injection: some calls fail with a TransientError before reaching the
// wrapped connector, and surviving calls are delayed by Latency. It
// models the flaky network between a long-running fuzzing campaign and
// its database server, so the harness's retry/backoff machinery can be
// tested without one.
type Flaky struct {
	inner Connector
	cfg   FlakyConfig
	r     *rand.Rand
	// dropped marks that the most recent Execute never reached the inner
	// connector, so its TriggeredBug would be stale.
	dropped bool
}

// NewFlaky wraps a connector in a transient-fault injector.
func NewFlaky(inner Connector, cfg FlakyConfig) *Flaky {
	return &Flaky{inner: inner, cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed))}
}

// Name implements Connector.
func (f *Flaky) Name() string { return f.inner.Name() }

// RelUniqueness implements Connector.
func (f *Flaky) RelUniqueness() bool { return f.inner.RelUniqueness() }

// ProvidesDBLabels implements Connector.
func (f *Flaky) ProvidesDBLabels() bool { return f.inner.ProvidesDBLabels() }

// Close implements Connector.
func (f *Flaky) Close() error { return f.inner.Close() }

// TriggeredBug implements Connector; nil when the most recent Execute
// was dropped by the injector (the wrapped connector never saw it).
func (f *Flaky) TriggeredBug() *faults.Bug {
	if f.dropped {
		return nil
	}
	return f.inner.TriggeredBug()
}

// nextReason draws the deterministic failure mode for one injected error.
func (f *Flaky) nextReason() string {
	return transientReasons[f.r.Intn(len(transientReasons))]
}

// Reset implements Connector, failing transiently at ResetErrorRate.
func (f *Flaky) Reset(g *graph.Graph, schema *graph.Schema) error {
	if f.cfg.ResetErrorRate > 0 && f.r.Float64() < f.cfg.ResetErrorRate {
		return &TransientError{Reason: f.nextReason()}
	}
	return f.inner.Reset(g, schema)
}

// ResetSnapshot implements Connector with the same injection policy as
// Reset — one RNG draw per call — so a campaign sees the identical
// injected-failure sequence whichever reset path the runner takes.
func (f *Flaky) ResetSnapshot(snap *graph.Snapshot, schema *graph.Schema) error {
	if f.cfg.ResetErrorRate > 0 && f.r.Float64() < f.cfg.ResetErrorRate {
		return &TransientError{Reason: f.nextReason()}
	}
	return f.inner.ResetSnapshot(snap, schema)
}

// reseed restarts the injector's deterministic failure stream from a new
// seed, so a reused wrapper behaves byte-identically to a freshly
// constructed one — the per-shard connector-reuse contract.
func (f *Flaky) reseed(seed int64) {
	f.cfg.Seed = seed
	f.r = rand.New(rand.NewSource(seed))
	f.dropped = false
}

// inject decides whether this call fails before reaching the inner
// connector (the connection dropped in flight) and otherwise applies the
// configured latency; both paths keep the inner engine's state
// independent of the injection.
func (f *Flaky) inject(ctx context.Context) error {
	if f.cfg.ErrorRate > 0 && f.r.Float64() < f.cfg.ErrorRate {
		f.dropped = true
		return &TransientError{Reason: f.nextReason()}
	}
	f.dropped = false
	if f.cfg.Latency > 0 {
		t := time.NewTimer(f.cfg.Latency)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return engine.ErrCanceled
		}
	}
	return nil
}

// Execute implements Connector.
func (f *Flaky) Execute(query string) (*engine.Result, error) {
	return f.ExecuteCtx(context.Background(), query)
}

// ExecuteCtx implements Connector: the injected failure happens before
// the inner connector sees the query.
func (f *Flaky) ExecuteCtx(ctx context.Context, query string) (*engine.Result, error) {
	if err := f.inject(ctx); err != nil {
		return nil, err
	}
	return f.inner.ExecuteCtx(ctx, query)
}

// ExecutePrepared implements Connector with the same injection policy as
// ExecuteCtx: one RNG draw per call, so a campaign sees the identical
// injected-failure sequence whichever execution path the runner takes.
func (f *Flaky) ExecutePrepared(ctx context.Context, pq *engine.PreparedQuery) (*engine.Result, error) {
	if err := f.inject(ctx); err != nil {
		return nil, err
	}
	return f.inner.ExecutePrepared(ctx, pq)
}
