package gdb

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"gqs/internal/engine"
	"gqs/internal/graph"
)

func flakyOverReference(t *testing.T, cfg FlakyConfig) *Flaky {
	t.Helper()
	r := rand.New(rand.NewSource(3))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 5, MaxRels: 10})
	ref := NewReference()
	if err := ref.Reset(g, schema); err != nil {
		t.Fatal(err)
	}
	return NewFlaky(ref, cfg)
}

// TestFlakyDeterministic: the same seed produces byte-identical failure
// sequences — the property the campaign-reproducibility guarantee needs.
func TestFlakyDeterministic(t *testing.T) {
	trace := func() string {
		fl := flakyOverReference(t, FlakyConfig{Seed: 11, ErrorRate: 0.3})
		s := ""
		for i := 0; i < 200; i++ {
			_, err := fl.Execute(`RETURN 1 AS x`)
			switch {
			case err == nil:
				s += "."
			case IsTransient(err):
				s += "T"
			default:
				s += "?"
			}
		}
		return s
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("flaky traces diverge:\n%s\n%s", a, b)
	}
	n := 0
	for _, c := range a {
		if c == 'T' {
			n++
		}
	}
	if n < 30 || n > 90 {
		t.Errorf("injection rate off: %d/200 transient at rate 0.3", n)
	}
	if want := 0; len(a) > 0 && a[0] == '?' {
		t.Errorf("unexpected error class, want %d", want)
	}
}

// TestFlakyTransientTyping: injected errors are transient, carry a
// reason, and never masquerade as bug errors.
func TestFlakyTransientTyping(t *testing.T) {
	fl := flakyOverReference(t, FlakyConfig{Seed: 1, ErrorRate: 1})
	_, err := fl.Execute(`RETURN 1 AS x`)
	if err == nil || !IsTransient(err) {
		t.Fatalf("err = %v, want transient", err)
	}
	var te *TransientError
	if !errors.As(err, &te) || te.Reason == "" {
		t.Errorf("transient error has no reason: %v", err)
	}
	var bug interface{ BugID() string }
	if errors.As(err, &bug) {
		t.Error("transient error must not carry a bug ID")
	}
	if fl.TriggeredBug() != nil {
		t.Error("dropped call must not expose a stale TriggeredBug")
	}
	if !IsTransient(fmt.Errorf("retrying: %w", te)) {
		t.Error("IsTransient must unwrap")
	}
	if IsTransient(errors.New("hard failure")) {
		t.Error("plain errors are not transient")
	}
}

// TestFlakyPassThrough: with no injection configured the wrapper is
// invisible — results, dialect flags, and fault attribution delegate.
func TestFlakyPassThrough(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 5, MaxRels: 10})
	mg := NewMemgraphSim()
	if err := mg.Reset(g, schema); err != nil {
		t.Fatal(err)
	}
	fl := NewFlaky(mg, FlakyConfig{Seed: 2})
	if fl.Name() != "memgraph" || !fl.RelUniqueness() || fl.ProvidesDBLabels() {
		t.Error("dialect flags must delegate")
	}
	res, err := fl.Execute(`MATCH (n) RETURN count(*) AS c`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("pass-through execute: %v %v", res, err)
	}
	if _, err := fl.Execute(`WITH replace('a', '', 'b') AS a0 RETURN a0`); err == nil {
		t.Fatal("Figure 9 query must still hang through the wrapper")
	}
	if b := fl.TriggeredBug(); b == nil || b.ID != "MG-O1" {
		t.Errorf("attribution through wrapper = %v", b)
	}
}

// TestFlakyResetInjection: Reset fails transiently at its own rate.
func TestFlakyResetInjection(t *testing.T) {
	fl := flakyOverReference(t, FlakyConfig{Seed: 4, ResetErrorRate: 1})
	r := rand.New(rand.NewSource(5))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 4, MaxRels: 4})
	if err := fl.Reset(g, schema); !IsTransient(err) {
		t.Fatalf("reset err = %v, want transient", err)
	}
}

// TestFlakyLatencyCancel: injected latency respects the context.
func TestFlakyLatencyCancel(t *testing.T) {
	fl := flakyOverReference(t, FlakyConfig{Seed: 6, Latency: time.Hour})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fl.ExecuteCtx(ctx, `RETURN 1 AS x`)
	if !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("latency ignored the context")
	}
}

// TestSimLiveHangCooperates: a live Sim hang returns promptly after the
// watchdog cancels, attributed to the hang bug.
func TestSimLiveHangCooperates(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 5, MaxRels: 10})
	mg := NewMemgraphSim().SetLiveFaults(true)
	if err := mg.Reset(g, schema); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := mg.ExecuteCtx(ctx, `WITH replace('a', '', 'b') AS a0 RETURN a0`)
	elapsed := time.Since(start)
	if elapsed < 25*time.Millisecond {
		t.Errorf("live hang returned in %v, before the deadline", elapsed)
	}
	var bug interface{ BugID() string }
	if !errors.As(err, &bug) || bug.BugID() != "MG-O1" {
		t.Errorf("err = %v, want MG-O1 hang", err)
	}
	if b := mg.TriggeredBug(); b == nil || b.ID != "MG-O1" {
		t.Errorf("TriggeredBug = %v, want MG-O1 (recorded before manifestation)", b)
	}
}
