// Package gqs is the public API of this repository: a Go reproduction of
// "Testing Graph Databases with Synthesized Queries" (SIGMOD 2025).
//
// The package offers three entry points:
//
//   - An embeddable in-memory Cypher graph database: NewDB. It supports
//     the openCypher 9 data-retrieval clauses (MATCH, OPTIONAL MATCH,
//     UNWIND, WITH, RETURN, UNION, CALL and the WHERE/ORDER BY/SKIP/LIMIT
//     subclauses) plus the update clauses (CREATE, SET, MERGE, DELETE,
//     DETACH DELETE, REMOVE), 61 functions, and aggregation.
//
//   - The GQS tester: NewTester runs ground-truth-based logic-bug testing
//     against any Target — one of the bundled simulated GDBs (OpenSim) or
//     a user-provided connector.
//
//   - The experiment harness (internal/experiments, driven by the
//     cmd/gqs-bench command), which regenerates the paper's tables and
//     figures against the simulated GDBs.
//
// See README.md for a walkthrough and DESIGN.md for the architecture.
package gqs

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gqs/internal/core"
	"gqs/internal/engine"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/value"
)

// DB is an embeddable in-memory Cypher graph database.
type DB struct {
	eng *engine.Engine
}

// NewDB opens an empty in-memory database with reference Cypher
// semantics.
func NewDB() *DB {
	return &DB{eng: engine.NewReference()}
}

// Execute runs one Cypher query and returns its result.
func (db *DB) Execute(query string) (*Result, error) {
	return db.eng.Execute(query)
}

// MustExecute runs a query and panics on error; intended for examples and
// fixtures.
func (db *DB) MustExecute(query string) *Result {
	r, err := db.eng.Execute(query)
	if err != nil {
		panic(fmt.Sprintf("gqs: %v", err))
	}
	return r
}

// Result is a query result: named columns and rows of Cypher values.
type Result = engine.Result

// PreparedQuery is a query parsed and analyzed exactly once, executable
// any number of times — concurrently, on any number of databases or
// targets — without re-parsing. Its AST and feature analysis are
// immutable after Prepare; all per-execution state lives in the executor.
type PreparedQuery = engine.PreparedQuery

// Prepare parses and analyzes a query once for repeated execution; see
// DB.ExecutePrepared and PreparedTarget.
func Prepare(text string) (*PreparedQuery, error) { return engine.Prepare(text) }

// ExecutePrepared runs a prepared query, sharing its AST with any other
// in-flight executions of the same PreparedQuery on other databases.
// Queries covered by the plan compiler execute their compiled physical
// plan (slot frames, pushed-down predicates — see SetPlanExecution);
// everything else runs on the AST interpreter with identical behaviour.
func (db *DB) ExecutePrepared(pq *PreparedQuery) (*Result, error) {
	return db.eng.ExecutePrepared(context.Background(), pq)
}

// SetPlanExecution toggles compiled-plan execution of prepared queries
// (on by default). Plans and the interpreter are behaviour-identical by
// contract; turning plans off exists for differential debugging, like
// the gqs command's -no-plan flag.
func (db *DB) SetPlanExecution(enabled bool) {
	db.eng.SetPlanExecution(enabled)
}

// PreparedTarget is the optional prepared-execution extension of Target:
// connectors that implement it are handed each synthesized query parsed
// and analyzed once (one parse per oracle check instead of one per call),
// with transient-error retries reusing the same PreparedQuery. The
// bundled simulated GDBs implement it; text-only targets keep working
// unchanged.
type PreparedTarget = core.PreparedTarget

// SnapshotTarget is the optional copy-on-write restart extension of
// Target: connectors that implement it share one immutable sealed
// snapshot of each generated graph across every restart of an
// iteration, so restoring state between oracle checks is O(1) for
// read-only workloads and O(entries written) otherwise. Behaviour must
// be indistinguishable from Reset with the same graph; the bundled
// simulated GDBs implement it, and targets without it keep the
// deep-clone Reset path.
type SnapshotTarget = core.SnapshotTarget

// Snapshot is an immutable, shareable view of one graph state; see
// SnapshotTarget and DESIGN.md §9.
type Snapshot = graph.Snapshot

// Value is a Cypher runtime value.
type Value = value.Value

// Target is the connector interface the tester drives: any Cypher
// database exposing reset-and-execute semantics can be tested.
type Target = core.Target

// Stats summarizes a testing campaign.
type Stats = core.Stats

// RobustnessConfig bounds the tester's resilience layer: per-query
// timeouts, transient-error retries, restart backoff, and the per-target
// circuit breaker. The zero value selects defaults.
type RobustnessConfig = core.RobustnessConfig

// RobustnessStats counts what the resilience layer absorbed during a
// campaign (Stats.Robust).
type RobustnessStats = core.RobustnessStats

// TestCase is one synthesized query with its verdict.
type TestCase = core.TestCase

// Verdict values re-exported for switch statements on TestCase.Verdict.
const (
	VerdictPass     = core.VerdictPass
	VerdictLogicBug = core.VerdictLogicBug
	VerdictErrorBug = core.VerdictErrorBug
	VerdictSkip     = core.VerdictSkip
)

// OpenSim opens one of the bundled simulated GDBs: "neo4j", "memgraph",
// "kuzu", "falkordb" (each the reference engine plus that system's
// dialect quirks and injected-fault catalog), or "reference" (no faults).
func OpenSim(name string) (*gdb.Sim, error) { return gdb.ByName(name) }

// Tester runs the GQS workflow — generate graph, select ground truth,
// synthesize query, validate — against a target.
type Tester struct {
	runner  *core.Runner
	target  Target
	factory TargetFactory
	cfg     testerConfig
}

// testerConfig is the option-accumulation state behind TesterOption:
// the runner configuration plus tester-level knobs that have no home in
// core.RunnerConfig (the worker-pool size and the checkpoint journal).
type testerConfig struct {
	runner   core.RunnerConfig
	workers  int
	batch    int
	ckPath   string
	ckEvery  int
	ckResume bool
}

// resolvedBatch is the effective work-unit size (see WithBatch); 0
// keeps units at one iteration each.
func (c testerConfig) resolvedBatch() int {
	if c.batch > 0 {
		return c.batch
	}
	return 1
}

// TesterOption customizes a Tester.
type TesterOption func(*testerConfig)

// WithSeed fixes the random seed (campaigns are fully deterministic per
// seed).
func WithSeed(seed int64) TesterOption {
	return func(c *testerConfig) { c.runner.Seed = seed }
}

// WithGraphSize bounds the generated graphs.
func WithGraphSize(maxNodes, maxRels int) TesterOption {
	return func(c *testerConfig) {
		c.runner.Graph.MaxNodes = maxNodes
		c.runner.Graph.MaxRels = maxRels
	}
}

// WithMaxSteps bounds the synthesis steps per query (the paper uses up
// to 9).
func WithMaxSteps(steps int) TesterOption {
	return func(c *testerConfig) { c.runner.Synth.MaxSteps = steps }
}

// WithQueriesPerGraph sets how many ground truths are drawn per graph.
func WithQueriesPerGraph(n int) TesterOption {
	return func(c *testerConfig) { c.runner.QueriesPerGraph = n }
}

// WithTimeout sets the per-query wall-clock deadline. A query exceeding
// it is canceled: an error-bug when a fault hung the target, a skip
// otherwise. Negative disables the watchdog.
func WithTimeout(d time.Duration) TesterOption {
	return func(c *testerConfig) { c.runner.Robust.Timeout = d }
}

// WithRetries sets how many times a transient connector error (an error
// exposing `Transient() bool`) is retried before the query is skipped.
// Negative disables retries.
func WithRetries(n int) TesterOption {
	return func(c *testerConfig) { c.runner.Robust.Retries = n }
}

// WithRobustness replaces the whole resilience configuration: timeouts,
// retry and restart backoff, and the circuit-breaker threshold.
func WithRobustness(rc RobustnessConfig) TesterOption {
	return func(c *testerConfig) { c.runner.Robust = rc }
}

// WithWorkers sets the worker-pool size of a sharded tester
// (NewShardedTester); 0 selects GOMAXPROCS. The merged Stats are
// identical for every worker count at the same seed — only wall-clock
// time changes. Ignored by NewTester, whose single shared target cannot
// be driven concurrently.
func WithWorkers(n int) TesterOption {
	return func(c *testerConfig) { c.workers = n }
}

// WithBatch sets the work-unit size of a sharded tester: each unit a
// worker drains is n contiguous logical iterations, amortizing per-unit
// scheduling and checkpoint costs. The merged Stats are identical for
// every batch size at the same seed — batching changes scheduling, not
// results. <= 0 (the default) keeps one iteration per unit. Ignored by
// NewTester.
func WithBatch(n int) TesterOption {
	return func(c *testerConfig) { c.batch = n }
}

// WithCheckpoint journals completed work units (iterations, or shards on
// a sharded tester) to a crash-safe append-only file, flushing a snapshot
// every `every` completed units (<= 0 means every unit). A RunContext
// canceled mid-campaign leaves the journal resumable; see WithResume.
// Only RunContext honors the journal — plain Run ignores it.
func WithCheckpoint(path string, every int) TesterOption {
	return func(c *testerConfig) { c.ckPath, c.ckEvery = path, every }
}

// WithResume makes RunContext resume the campaign recorded in the
// WithCheckpoint journal: completed units are restored from the journal
// (their stats fold into the returned Stats, but their test cases are
// not re-reported) and the RNG fast-forwards past them, so the combined
// outcome is identical to an uninterrupted run. Resume is refused with
// ErrFingerprintMismatch if the tester configuration, iteration count,
// or mode changed since the journal was written.
func WithResume() TesterOption {
	return func(c *testerConfig) { c.ckResume = true }
}

// ErrFingerprintMismatch is returned by RunContext when WithResume finds
// a journal written under a different configuration.
var ErrFingerprintMismatch = core.ErrFingerprintMismatch

// TargetFactory builds one independent target per shard for a sharded
// tester; see core.TargetFactory for the isolation contract.
type TargetFactory = core.TargetFactory

// NewTester creates a tester for the target.
func NewTester(target Target, opts ...TesterOption) *Tester {
	cfg := testerConfig{runner: core.DefaultRunnerConfig()}
	for _, o := range opts {
		o(&cfg)
	}
	return &Tester{runner: core.NewRunner(target, cfg.runner), target: target, cfg: cfg}
}

// NewShardedTester creates a tester that fans its iterations across a
// worker pool (WithWorkers, default GOMAXPROCS). Each of Run's n
// iterations becomes a logical shard with a seed derived from
// (WithSeed, shard index) and a fresh target from the factory, so the
// merged stats do not depend on the worker count.
func NewShardedTester(factory TargetFactory, opts ...TesterOption) *Tester {
	cfg := testerConfig{runner: core.DefaultRunnerConfig()}
	for _, o := range opts {
		o(&cfg)
	}
	return &Tester{factory: factory, cfg: cfg}
}

// Run performs n full workflow iterations (one generated graph each),
// invoking report for every synthesized test case. On a sharded tester
// the iterations run across the worker pool and report is serialized
// (never called concurrently), but cases from different shards may
// interleave; use TestCase fields, not call order, to correlate.
func (t *Tester) Run(n int, report func(*TestCase)) (Stats, error) {
	if t.factory == nil {
		return t.runner.Run(n, report)
	}
	pcfg := core.ParallelConfig{
		Workers: t.cfg.workers, Iterations: n,
		Batch: t.cfg.resolvedBatch(), Runner: t.cfg.runner,
	}
	var observe func(int, core.Target, *core.TestCase)
	if report != nil {
		var mu sync.Mutex
		observe = func(_ int, _ core.Target, tc *core.TestCase) {
			mu.Lock()
			defer mu.Unlock()
			report(tc)
		}
	}
	ps := core.RunParallel(pcfg, t.factory, observe)
	return ps.Stats, nil
}

// RunContext is Run under a cancelable context and the WithCheckpoint /
// WithResume options. Unlike Run — which on a sequential tester continues
// the same runner state across calls — RunContext always executes a
// self-contained campaign of n iterations derived from WithSeed (the
// determinism a resumable journal requires). Cancellation stops between
// work units, flushes a final checkpoint, and returns the partial Stats
// with a nil error; resuming later completes the campaign as if it had
// never been interrupted.
func (t *Tester) RunContext(ctx context.Context, n int, report func(*TestCase)) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var ck *core.Checkpointer
	if t.cfg.ckPath != "" {
		mode, workers := "sequential", 0
		if t.factory != nil {
			mode, workers = "sharded", t.cfg.workers
		}
		fp := core.CampaignFingerprint(mode, "user-target", "", workers, t.cfg.resolvedBatch(), n, t.cfg.runner)
		var err error
		ck, err = core.OpenCheckpoint(core.CheckpointConfig{
			Path: t.cfg.ckPath, Every: t.cfg.ckEvery, Resume: t.cfg.ckResume,
		}, fp)
		if err != nil {
			return Stats{}, err
		}
		defer ck.Close()
	}
	var stats Stats
	if t.factory == nil {
		var err error
		stats, err = core.RunCheckpointedSequential(ctx, t.target, t.cfg.runner, n,
			"target", ck, core.DurableHooks{}, report)
		if err != nil {
			return stats, err
		}
	} else {
		pcfg := core.ParallelConfig{
			Workers: t.cfg.workers, Iterations: n,
			Batch: t.cfg.resolvedBatch(), Runner: t.cfg.runner,
		}
		var observe func(int, core.Target, *core.TestCase)
		if report != nil {
			var mu sync.Mutex
			observe = func(_ int, _ core.Target, tc *core.TestCase) {
				mu.Lock()
				defer mu.Unlock()
				report(tc)
			}
		}
		ps := core.RunCheckpointedParallel(ctx, pcfg, "target", t.factory, observe, ck, core.DurableHooks{})
		stats = ps.Stats
	}
	if ck != nil {
		if err := ck.Flush(); err != nil {
			return stats, fmt.Errorf("gqs: checkpoint journal: %w", err)
		}
		ck.ApplyTo(&stats.Robust)
	}
	return stats, nil
}

// Synthesize builds a single ground-truth/query pair over a given graph,
// exposing the synthesizer directly for tooling.
func Synthesize(seed int64, maxNodes, maxRels int) (query string, expected *Result, err error) {
	r := rand.New(rand.NewSource(seed))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: maxNodes, MaxRels: maxRels})
	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	gt := core.SelectGroundTruth(r, g, 6)
	sq, err := syn.Synthesize(gt)
	if err != nil {
		return "", nil, err
	}
	return sq.Text, sq.Expected, nil
}

// LoadExample loads the Figure 2 movie graph into a database; used by the
// quickstart example and tests.
func LoadExample(db *DB) {
	db.MustExecute(`CREATE
		(alice:USER {name: 'Alice'}),
		(bob:USER {name: 'Bob'}),
		(heat:MOVIE {name: 'Heat', year: 1995, genre: ['Drama', 'Crime']}),
		(up:MOVIE {name: 'Up', year: 2009, genre: ['Animation']}),
		(alice)-[:LIKE {rating: 10}]->(heat),
		(alice)-[:LIKE {rating: 7}]->(up),
		(bob)-[:LIKE {rating: 9}]->(up)`)
}
