// Command gqs is the GQS testing tool: it fuzzes a (simulated) graph
// database with ground-truth-synthesized Cypher queries and reports every
// discrepancy, reproducing the workflow of Figure 3 of the paper.
//
// Usage:
//
//	gqs -gdb falkordb -iterations 50 -seed 7
//	gqs -gdb all -iterations 30 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"gqs/internal/core"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

func main() {
	var (
		gdbName    = flag.String("gdb", "all", "GDB under test: neo4j, memgraph, kuzu, falkordb, reference, or all")
		seed       = flag.Int64("seed", 1, "random seed (campaigns are deterministic per seed)")
		iterations = flag.Int("iterations", 30, "workflow iterations (one generated graph each)")
		maxNodes   = flag.Int("max-nodes", 13, "maximum nodes per generated graph")
		maxRels    = flag.Int("max-rels", 60, "maximum relationships per generated graph")
		maxSteps   = flag.Int("max-steps", 9, "maximum synthesis steps per query")
		resultSet  = flag.Int("max-result-set", 6, "maximum expected-result-set size")
		verbose    = flag.Bool("v", false, "print every failing query")
		reportDir  = flag.String("reports", "", "directory to write reproducible bug reports into (one .md per distinct bug)")
	)
	flag.Parse()
	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %v\n", err)
			os.Exit(1)
		}
	}

	names := []string{*gdbName}
	if *gdbName == "all" {
		names = []string{"neo4j", "memgraph", "kuzu", "falkordb"}
	}
	exit := 0
	for _, name := range names {
		if err := run(name, *seed, *iterations, *maxNodes, *maxRels, *maxSteps, *resultSet, *verbose, *reportDir); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %s: %v\n", name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func run(name string, seed int64, iterations, maxNodes, maxRels, maxSteps, resultSet int, verbose bool, reportDir string) error {
	sim, err := gdb.ByName(name)
	if err != nil {
		return err
	}
	defer sim.Close()

	cfg := core.DefaultRunnerConfig()
	cfg.Seed = seed
	cfg.Graph = graph.GenConfig{MaxNodes: maxNodes, MaxRels: maxRels}
	cfg.Synth.MaxSteps = maxSteps
	cfg.Synth.Plan.MaxResultSet = resultSet

	fmt.Printf("=== testing %s (seed %d, %d iterations) ===\n", name, seed, iterations)
	found := map[string]bool{}
	rn := core.NewRunner(sim, cfg)
	stats, err := rn.Run(iterations, func(tc *core.TestCase) {
		if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
			return
		}
		bug := sim.TriggeredBug()
		tag := "UNATTRIBUTED"
		fresh := true
		if bug != nil {
			tag = bug.ID
			fresh = !found[bug.ID]
			found[bug.ID] = true
		}
		if fresh && reportDir != "" && bug != nil {
			path := reportDir + "/" + name + "-" + bug.ID + ".md"
			if werr := os.WriteFile(path, []byte(tc.Report(name)), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "gqs: write report: %v\n", werr)
			}
		}
		if !fresh && !verbose {
			return
		}
		fmt.Printf("[%s] %s (query #%d, %d steps)\n", tc.Verdict, tag, tc.Seq, tc.Steps)
		if bug != nil {
			fmt.Printf("  %s\n", bug.Description)
		}
		if verbose {
			fmt.Printf("  query: %s\n", tc.Query)
			if tc.Verdict == core.VerdictLogicBug {
				fmt.Printf("  expected: %v\n  actual:   %v\n", tc.Expected.Canonical(), tc.Actual.Canonical())
			} else {
				fmt.Printf("  error: %v\n", tc.Err)
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d queries, %d passed, %d logic-bug reports, %d error reports, %d skipped; %d distinct bugs; %.1fs\n",
		name, stats.Queries, stats.Passes, stats.LogicBugs, stats.ErrorBugs, stats.Skips,
		len(found), stats.Elapsed.Seconds())
	return nil
}
