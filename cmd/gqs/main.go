// Command gqs is the GQS testing tool: it fuzzes a (simulated) graph
// database with ground-truth-synthesized Cypher queries and reports every
// discrepancy, reproducing the workflow of Figure 3 of the paper.
//
// Usage:
//
//	gqs -gdb falkordb -iterations 50 -seed 7
//	gqs -gdb all -iterations 30 -v
//	gqs -gdb memgraph -live -flaky 0.1 -timeout 5s -retries 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// options carries the flag values into each per-GDB run.
type options struct {
	seed       int64
	iterations int
	maxNodes   int
	maxRels    int
	maxSteps   int
	resultSet  int
	verbose    bool
	reportDir  string
	timeout    time.Duration
	retries    int
	flaky      float64
	live       bool
	workers    int
}

func main() {
	var (
		gdbName    = flag.String("gdb", "all", "GDB under test: neo4j, memgraph, kuzu, falkordb, reference, or all")
		seed       = flag.Int64("seed", 1, "random seed (campaigns are deterministic per seed)")
		iterations = flag.Int("iterations", 30, "workflow iterations (one generated graph each)")
		maxNodes   = flag.Int("max-nodes", 13, "maximum nodes per generated graph")
		maxRels    = flag.Int("max-rels", 60, "maximum relationships per generated graph")
		maxSteps   = flag.Int("max-steps", 9, "maximum synthesis steps per query")
		resultSet  = flag.Int("max-result-set", 6, "maximum expected-result-set size")
		verbose    = flag.Bool("v", false, "print every failing query")
		reportDir  = flag.String("reports", "", "directory to write reproducible bug reports into (one .md per distinct bug)")
		timeout    = flag.Duration("timeout", 20*time.Second, "per-query wall-clock deadline (negative disables the watchdog)")
		retries    = flag.Int("retries", 2, "retries for transient connector errors (negative disables)")
		flaky      = flag.Float64("flaky", 0, "inject transient connector errors at this rate (0..1) to exercise the retry machinery")
		live       = flag.Bool("live", false, "manifest injected faults live: hangs block until the deadline, crashes panic in the connector")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for the sharded executor; the reported bug set is identical for every value at the same seed (0 = legacy sequential runner)")
	)
	flag.Parse()
	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %v\n", err)
			os.Exit(1)
		}
	}
	opts := options{
		seed: *seed, iterations: *iterations,
		maxNodes: *maxNodes, maxRels: *maxRels,
		maxSteps: *maxSteps, resultSet: *resultSet,
		verbose: *verbose, reportDir: *reportDir,
		timeout: *timeout, retries: *retries,
		flaky: *flaky, live: *live,
		workers: *workers,
	}

	names := []string{*gdbName}
	if *gdbName == "all" {
		names = []string{"neo4j", "memgraph", "kuzu", "falkordb"}
	}
	exit := 0
	for _, name := range names {
		runner := run
		if opts.workers > 0 {
			runner = runParallel
		}
		if err := runner(name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %s: %v\n", name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// runnerConfig translates the flags into the runner configuration both
// executors share.
func runnerConfig(o options) core.RunnerConfig {
	cfg := core.DefaultRunnerConfig()
	cfg.Seed = o.seed
	cfg.Graph = graph.GenConfig{MaxNodes: o.maxNodes, MaxRels: o.maxRels}
	cfg.Synth.MaxSteps = o.maxSteps
	cfg.Synth.Plan.MaxResultSet = o.resultSet
	cfg.Robust.Timeout = o.timeout
	cfg.Robust.Retries = o.retries
	return cfg
}

// runParallel is the sharded executor path (-workers >= 1): iterations
// fan out across a worker pool, detections are buffered per shard, and
// the output is printed in canonical shard order — so it is identical
// for every worker count at the same seed.
func runParallel(name string, o options) error {
	if _, err := gdb.ByName(name); err != nil {
		return err // reject unknown names before spinning up a pool
	}
	connect := gdb.NewFactory(gdb.FactoryConfig{
		GDB: name, Live: o.live, FlakyRate: o.flaky, Seed: o.seed,
	})
	pcfg := core.ParallelConfig{
		Workers:    o.workers,
		Iterations: o.iterations,
		Runner:     runnerConfig(o),
	}
	fmt.Printf("=== testing %s (seed %d, %d iterations, %d workers) ===\n",
		name, o.seed, o.iterations, o.workers)

	// Detections are buffered per shard (the observer runs concurrently
	// across shards, sequentially within one — disjoint slots need no
	// lock) and rendered after the pool drains, in shard order.
	type detection struct {
		bug *faults.Bug
		tc  *core.TestCase
	}
	logs := make([][]detection, o.iterations)
	meter := metrics.NewMeter()
	ps := core.RunParallel(pcfg, func(shard int) (core.Target, error) { return connect(shard) },
		func(shard int, target core.Target, tc *core.TestCase) {
			meter.AddQuery()
			if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
				return
			}
			var bug *faults.Bug
			if tb, ok := target.(interface{ TriggeredBug() *faults.Bug }); ok {
				bug = tb.TriggeredBug()
			}
			logs[shard] = append(logs[shard], detection{bug: bug, tc: tc})
		})
	meter.AddIterations(len(ps.Shards))

	found := map[string]bool{}
	for shard, dets := range logs {
		for _, d := range dets {
			tag := "UNATTRIBUTED"
			fresh := true
			if d.bug != nil {
				tag = d.bug.ID
				fresh = !found[tag]
				found[tag] = true
			}
			if fresh && o.reportDir != "" && d.bug != nil {
				path := o.reportDir + "/" + name + "-" + d.bug.ID + ".md"
				if werr := os.WriteFile(path, []byte(d.tc.Report(name)), 0o644); werr != nil {
					fmt.Fprintf(os.Stderr, "gqs: write report: %v\n", werr)
				}
			}
			if !fresh && !o.verbose {
				continue
			}
			fmt.Printf("[%s] %s (shard %d, query #%d, %d steps)\n", d.tc.Verdict, tag, shard, d.tc.Seq, d.tc.Steps)
			if d.bug != nil {
				fmt.Printf("  %s\n", d.bug.Description)
			}
			if o.verbose {
				fmt.Printf("  query: %s\n", d.tc.Query)
				if d.tc.Verdict == core.VerdictLogicBug {
					fmt.Printf("  expected: %v\n  actual:   %v\n", d.tc.Expected.Canonical(), d.tc.Actual.Canonical())
				} else {
					fmt.Printf("  error: %v\n", d.tc.Err)
				}
			}
		}
	}
	for range found {
		meter.AddBug()
	}
	stats := ps.Stats
	printSummary(name, stats, len(found))
	// The busy/wall ratio is the parallelism actually achieved: per-shard
	// busy time sums in stats.Elapsed while Wall is the pool's clock.
	parallelism := 0.0
	if ps.Wall > 0 {
		parallelism = stats.Elapsed.Seconds() / ps.Wall.Seconds()
	}
	fmt.Printf("%s: throughput: %s; %d workers, %.2fx parallelism\n",
		name, meter.Snapshot(), ps.Workers, parallelism)
	return nil
}

func run(name string, o options) error {
	sim, err := gdb.ByName(name)
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.SetLiveFaults(o.live)

	var target gdb.Connector = sim
	if o.flaky > 0 {
		target = gdb.NewFlaky(sim, gdb.FlakyConfig{
			Seed:           o.seed + 0x5eed,
			ErrorRate:      o.flaky,
			ResetErrorRate: o.flaky / 2,
		})
	}

	cfg := runnerConfig(o)

	fmt.Printf("=== testing %s (seed %d, %d iterations) ===\n", name, o.seed, o.iterations)
	found := map[string]bool{}
	rn := core.NewRunner(target, cfg)
	stats, err := rn.Run(o.iterations, func(tc *core.TestCase) {
		if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
			return
		}
		bug := target.TriggeredBug()
		tag := "UNATTRIBUTED"
		fresh := true
		if bug != nil {
			tag = bug.ID
			fresh = !found[bug.ID]
			found[bug.ID] = true
		}
		if fresh && o.reportDir != "" && bug != nil {
			path := o.reportDir + "/" + name + "-" + bug.ID + ".md"
			if werr := os.WriteFile(path, []byte(tc.Report(name)), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "gqs: write report: %v\n", werr)
			}
		}
		if !fresh && !o.verbose {
			return
		}
		fmt.Printf("[%s] %s (query #%d, %d steps)\n", tc.Verdict, tag, tc.Seq, tc.Steps)
		if bug != nil {
			fmt.Printf("  %s\n", bug.Description)
		}
		if o.verbose {
			fmt.Printf("  query: %s\n", tc.Query)
			if tc.Verdict == core.VerdictLogicBug {
				fmt.Printf("  expected: %v\n  actual:   %v\n", tc.Expected.Canonical(), tc.Actual.Canonical())
			} else {
				fmt.Printf("  error: %v\n", tc.Err)
			}
		}
	})
	if err != nil {
		return err
	}
	printSummary(name, stats, len(found))
	return nil
}

// printSummary renders the per-GDB closing lines both executors share.
func printSummary(name string, stats core.Stats, distinct int) {
	fmt.Printf("%s: %d queries, %d passed, %d logic-bug reports, %d error reports, %d skipped; %d distinct bugs; %.1fs\n",
		name, stats.Queries, stats.Passes, stats.LogicBugs, stats.ErrorBugs, stats.Skips,
		distinct, stats.Elapsed.Seconds())
	if rb := stats.Robust; rb != (core.RobustnessStats{}) {
		fmt.Printf("%s: resilience: %d timeouts, %d retries (%d transient, %d give-ups), %d panics recovered, %d restarts (%d failed), %d breaker trips, %d abandoned graphs, %v downtime\n",
			name, rb.Timeouts, rb.Retries, rb.TransientErrors, rb.TransientGiveUps,
			rb.PanicsRecovered, rb.Restarts, rb.RestartFailures, rb.BreakerTrips,
			rb.AbandonedGraphs, rb.Downtime.Round(time.Millisecond))
	}
}
