// Command gqs is the GQS testing tool: it fuzzes a (simulated) graph
// database with ground-truth-synthesized Cypher queries and reports every
// discrepancy, reproducing the workflow of Figure 3 of the paper.
//
// Usage:
//
//	gqs -gdb falkordb -iterations 50 -seed 7
//	gqs -gdb all -iterations 30 -v
//	gqs -gdb memgraph -live -flaky 0.1 -timeout 5s -retries 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"gqs/internal/core"
	"gqs/internal/gdb"
	"gqs/internal/graph"
)

// options carries the flag values into each per-GDB run.
type options struct {
	seed       int64
	iterations int
	maxNodes   int
	maxRels    int
	maxSteps   int
	resultSet  int
	verbose    bool
	reportDir  string
	timeout    time.Duration
	retries    int
	flaky      float64
	live       bool
}

func main() {
	var (
		gdbName    = flag.String("gdb", "all", "GDB under test: neo4j, memgraph, kuzu, falkordb, reference, or all")
		seed       = flag.Int64("seed", 1, "random seed (campaigns are deterministic per seed)")
		iterations = flag.Int("iterations", 30, "workflow iterations (one generated graph each)")
		maxNodes   = flag.Int("max-nodes", 13, "maximum nodes per generated graph")
		maxRels    = flag.Int("max-rels", 60, "maximum relationships per generated graph")
		maxSteps   = flag.Int("max-steps", 9, "maximum synthesis steps per query")
		resultSet  = flag.Int("max-result-set", 6, "maximum expected-result-set size")
		verbose    = flag.Bool("v", false, "print every failing query")
		reportDir  = flag.String("reports", "", "directory to write reproducible bug reports into (one .md per distinct bug)")
		timeout    = flag.Duration("timeout", 20*time.Second, "per-query wall-clock deadline (negative disables the watchdog)")
		retries    = flag.Int("retries", 2, "retries for transient connector errors (negative disables)")
		flaky      = flag.Float64("flaky", 0, "inject transient connector errors at this rate (0..1) to exercise the retry machinery")
		live       = flag.Bool("live", false, "manifest injected faults live: hangs block until the deadline, crashes panic in the connector")
	)
	flag.Parse()
	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %v\n", err)
			os.Exit(1)
		}
	}
	opts := options{
		seed: *seed, iterations: *iterations,
		maxNodes: *maxNodes, maxRels: *maxRels,
		maxSteps: *maxSteps, resultSet: *resultSet,
		verbose: *verbose, reportDir: *reportDir,
		timeout: *timeout, retries: *retries,
		flaky: *flaky, live: *live,
	}

	names := []string{*gdbName}
	if *gdbName == "all" {
		names = []string{"neo4j", "memgraph", "kuzu", "falkordb"}
	}
	exit := 0
	for _, name := range names {
		if err := run(name, opts); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %s: %v\n", name, err)
			exit = 1
		}
	}
	os.Exit(exit)
}

func run(name string, o options) error {
	sim, err := gdb.ByName(name)
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.SetLiveFaults(o.live)

	var target gdb.Connector = sim
	if o.flaky > 0 {
		target = gdb.NewFlaky(sim, gdb.FlakyConfig{
			Seed:           o.seed + 0x5eed,
			ErrorRate:      o.flaky,
			ResetErrorRate: o.flaky / 2,
		})
	}

	cfg := core.DefaultRunnerConfig()
	cfg.Seed = o.seed
	cfg.Graph = graph.GenConfig{MaxNodes: o.maxNodes, MaxRels: o.maxRels}
	cfg.Synth.MaxSteps = o.maxSteps
	cfg.Synth.Plan.MaxResultSet = o.resultSet
	cfg.Robust.Timeout = o.timeout
	cfg.Robust.Retries = o.retries

	fmt.Printf("=== testing %s (seed %d, %d iterations) ===\n", name, o.seed, o.iterations)
	found := map[string]bool{}
	rn := core.NewRunner(target, cfg)
	stats, err := rn.Run(o.iterations, func(tc *core.TestCase) {
		if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
			return
		}
		bug := target.TriggeredBug()
		tag := "UNATTRIBUTED"
		fresh := true
		if bug != nil {
			tag = bug.ID
			fresh = !found[bug.ID]
			found[bug.ID] = true
		}
		if fresh && o.reportDir != "" && bug != nil {
			path := o.reportDir + "/" + name + "-" + bug.ID + ".md"
			if werr := os.WriteFile(path, []byte(tc.Report(name)), 0o644); werr != nil {
				fmt.Fprintf(os.Stderr, "gqs: write report: %v\n", werr)
			}
		}
		if !fresh && !o.verbose {
			return
		}
		fmt.Printf("[%s] %s (query #%d, %d steps)\n", tc.Verdict, tag, tc.Seq, tc.Steps)
		if bug != nil {
			fmt.Printf("  %s\n", bug.Description)
		}
		if o.verbose {
			fmt.Printf("  query: %s\n", tc.Query)
			if tc.Verdict == core.VerdictLogicBug {
				fmt.Printf("  expected: %v\n  actual:   %v\n", tc.Expected.Canonical(), tc.Actual.Canonical())
			} else {
				fmt.Printf("  error: %v\n", tc.Err)
			}
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d queries, %d passed, %d logic-bug reports, %d error reports, %d skipped; %d distinct bugs; %.1fs\n",
		name, stats.Queries, stats.Passes, stats.LogicBugs, stats.ErrorBugs, stats.Skips,
		len(found), stats.Elapsed.Seconds())
	if rb := stats.Robust; rb != (core.RobustnessStats{}) {
		fmt.Printf("%s: resilience: %d timeouts, %d retries (%d transient, %d give-ups), %d panics recovered, %d restarts (%d failed), %d breaker trips, %d abandoned graphs, %v downtime\n",
			name, rb.Timeouts, rb.Retries, rb.TransientErrors, rb.TransientGiveUps,
			rb.PanicsRecovered, rb.Restarts, rb.RestartFailures, rb.BreakerTrips,
			rb.AbandonedGraphs, rb.Downtime.Round(time.Millisecond))
	}
	return nil
}
