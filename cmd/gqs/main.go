// Command gqs is the GQS testing tool: it fuzzes a (simulated) graph
// database with ground-truth-synthesized Cypher queries and reports every
// discrepancy, reproducing the workflow of Figure 3 of the paper.
//
// Usage:
//
//	gqs -gdb falkordb -iterations 50 -seed 7
//	gqs -gdb all -iterations 30 -v
//	gqs -gdb memgraph -live -flaky 0.1 -timeout 5s -retries 3
//	gqs -gdb all -checkpoint run.journal -checkpoint-every 5   # durable
//	gqs -gdb all -checkpoint run.journal -resume               # after a kill
//
// With -checkpoint the campaign journals completed work units to a
// crash-safe file; SIGINT/SIGTERM drain in-flight work, write a final
// checkpoint, and exit 0, and -resume fast-forwards a new run past
// everything already completed — to the byte-identical results an
// uninterrupted run would have produced.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"gqs/internal/core"
	"gqs/internal/faults"
	"gqs/internal/gdb"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

// options carries the flag values into each per-GDB run.
type options struct {
	seed       int64
	iterations int
	maxNodes   int
	maxRels    int
	maxSteps   int
	resultSet  int
	graphScale int
	verbose    bool
	reportDir  string
	timeout    time.Duration
	retries    int
	flaky      float64
	live       bool
	noPlan     bool
	workers    int
	batch      int
}

// resolvedBatch is the effective work-unit size of the sharded
// executor: -batch when given, else ~4 units per worker (clamped to
// [1, 16]). A pure function of the options — it feeds the checkpoint
// fingerprint, which must not depend on the machine.
func (o options) resolvedBatch() int {
	if o.batch > 0 {
		return o.batch
	}
	if o.workers < 1 {
		return 1
	}
	b := o.iterations / (o.workers * 4)
	if b < 1 {
		b = 1
	}
	if b > 16 {
		b = 16
	}
	return b
}

func main() {
	var (
		gdbName    = flag.String("gdb", "all", "GDB under test: neo4j, memgraph, kuzu, falkordb, reference, or all")
		seed       = flag.Int64("seed", 1, "random seed (campaigns are deterministic per seed)")
		iterations = flag.Int("iterations", 30, "workflow iterations (one generated graph each)")
		maxNodes   = flag.Int("max-nodes", 13, "maximum nodes per generated graph")
		maxRels    = flag.Int("max-rels", 60, "maximum relationships per generated graph")
		maxSteps   = flag.Int("max-steps", 9, "maximum synthesis steps per query")
		resultSet  = flag.Int("max-result-set", 6, "maximum expected-result-set size")
		graphScale = flag.Int("graph-scale", 0, "bulk-generate power-law graphs of exactly this many nodes (0 = the paper's small-graph generator); large graphs pair well with low -iterations")
		verbose    = flag.Bool("v", false, "print every failing query")
		reportDir  = flag.String("reports", "", "directory to write reproducible bug reports into (one .md per distinct bug)")
		timeout    = flag.Duration("timeout", 20*time.Second, "per-query wall-clock deadline (negative disables the watchdog)")
		retries    = flag.Int("retries", 2, "retries for transient connector errors (negative disables)")
		flaky      = flag.Float64("flaky", 0, "inject transient connector errors at this rate (0..1) to exercise the retry machinery")
		live       = flag.Bool("live", false, "manifest injected faults live: hangs block until the deadline, crashes panic in the connector")
		noPlan     = flag.Bool("no-plan", false, "execute prepared queries on the interpreter instead of compiled plans (differential debugging; the bug set is identical either way)")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool size for the sharded executor; the reported bug set is identical for every value at the same seed (0 = legacy sequential runner)")
		batchSize  = flag.Int("batch", 0, "iterations per work unit in the sharded executor (0 = automatic, ~4 units per worker); the reported bug set is identical for every value")
		checkpoint = flag.String("checkpoint", "", "journal completed work units to this file for crash-safe resume")
		ckEvery    = flag.Int("checkpoint-every", 10, "flush a checkpoint snapshot every N completed units (shards or iterations)")
		resume     = flag.Bool("resume", false, "resume the campaign recorded in -checkpoint (refused if the configuration changed)")
	)
	flag.Parse()
	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %v\n", err)
			os.Exit(1)
		}
	}
	opts := options{
		seed: *seed, iterations: *iterations,
		maxNodes: *maxNodes, maxRels: *maxRels,
		maxSteps: *maxSteps, resultSet: *resultSet,
		graphScale: *graphScale,
		verbose:    *verbose, reportDir: *reportDir,
		timeout: *timeout, retries: *retries,
		flaky: *flaky, live: *live, noPlan: *noPlan,
		workers: *workers, batch: *batchSize,
	}

	names := []string{*gdbName}
	if *gdbName == "all" {
		names = []string{"neo4j", "memgraph", "kuzu", "falkordb"}
	}

	// SIGINT/SIGTERM cancel the campaign context: the executors drain
	// in-flight work and stop between units, the final checkpoint below
	// flushes, and a second signal kills outright (stop() restores the
	// default handlers once we're past the graceful window).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var ck *core.Checkpointer
	if *checkpoint != "" {
		if opts.flaky > 0 && opts.workers == 0 {
			fmt.Fprintln(os.Stderr, "gqs: warning: the sequential executor's flaky stream spans the whole campaign and cannot be fast-forwarded; a resumed run will see a different fault schedule (use -workers >= 1 for resumable flaky campaigns)")
		}
		var err error
		ck, err = core.OpenCheckpoint(core.CheckpointConfig{
			Path: *checkpoint, Every: *ckEvery, Resume: *resume,
		}, fingerprint(names, opts))
		if err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %v\n", err)
			os.Exit(1)
		}
		if n := ck.Stats().ResumedUnits; n > 0 {
			fmt.Printf("resuming from %s: %d completed units restored\n", *checkpoint, n)
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "gqs: -resume requires -checkpoint")
		os.Exit(1)
	}

	exit := 0
	for _, name := range names {
		if ctx.Err() != nil {
			break
		}
		runner := run
		if opts.workers > 0 {
			runner = runParallel
		}
		if err := runner(ctx, name, opts, ck); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: %s: %v\n", name, err)
			exit = 1
		}
	}
	if ck != nil {
		if err := ck.Flush(); err != nil {
			fmt.Fprintf(os.Stderr, "gqs: checkpoint journal degraded (campaign results unaffected): %v\n", err)
			exit = 1
		}
		cs := ck.Stats()
		fmt.Printf("checkpoint: %d snapshots journaled (%d bytes) to %s\n", cs.Written, cs.Bytes, *checkpoint)
		ck.Close()
	}
	if ctx.Err() != nil {
		stop()
		if ck != nil {
			fmt.Printf("interrupted: progress checkpointed; rerun with -resume -checkpoint %s to continue\n", *checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "gqs: interrupted")
			exit = 130
		}
	}
	os.Exit(exit)
}

// fingerprint renders the campaign identity the checkpoint journal is
// bound to; see core.CampaignFingerprint. The output options (-v,
// -reports) are deliberately excluded — they do not affect the
// deterministic stream. -no-plan is excluded too: compiled plans and the
// interpreter are behaviour-identical by contract (the plandiff gate
// enforces it), so a campaign checkpointed under one may resume under
// the other.
func fingerprint(names []string, o options) string {
	mode, workers := "sequential", 0
	if o.workers > 0 {
		mode, workers = "sharded", o.workers
	}
	targets := strings.Join(names, ",")
	if o.live {
		targets += " live"
	}
	if o.flaky > 0 {
		targets += fmt.Sprintf(" flaky=%g", o.flaky)
	}
	return core.CampaignFingerprint(mode, targets, faults.CatalogFingerprint(),
		workers, o.resolvedBatch(), o.iterations, runnerConfig(o))
}

// runnerConfig translates the flags into the runner configuration both
// executors share.
func runnerConfig(o options) core.RunnerConfig {
	cfg := core.DefaultRunnerConfig()
	cfg.Seed = o.seed
	cfg.Graph = graph.GenConfig{MaxNodes: o.maxNodes, MaxRels: o.maxRels, Scale: o.graphScale}
	cfg.Synth.MaxSteps = o.maxSteps
	cfg.Synth.Plan.MaxResultSet = o.resultSet
	cfg.Robust.Timeout = o.timeout
	cfg.Robust.Retries = o.retries
	return cfg
}

// cmdDetection is one logic- or error-bug detection, prerendered so the
// checkpoint journal can replay a restored unit's output (and report
// file) exactly as the original run printed it.
type cmdDetection struct {
	Bug     string `json:"bug,omitempty"` // catalog ID; "" = unattributed
	Desc    string `json:"desc,omitempty"`
	Verdict string `json:"verdict"`
	Seq     int    `json:"seq"`
	Steps   int    `json:"steps"`
	Query   string `json:"query,omitempty"`
	Detail  string `json:"detail,omitempty"` // expected/actual or error lines
	Report  string `json:"report,omitempty"` // reproducible bug report (md)
}

// captureDetection renders a failing test case into its durable form;
// ok is false for passes and skips.
func captureDetection(name string, target core.Target, tc *core.TestCase, reportDir string) (cmdDetection, bool) {
	if tc.Verdict != core.VerdictLogicBug && tc.Verdict != core.VerdictErrorBug {
		return cmdDetection{}, false
	}
	d := cmdDetection{Verdict: tc.Verdict.String(), Seq: tc.Seq, Steps: tc.Steps, Query: tc.Query}
	if tb, ok := target.(interface{ TriggeredBug() *faults.Bug }); ok {
		if b := tb.TriggeredBug(); b != nil {
			d.Bug, d.Desc = b.ID, b.Description
			if reportDir != "" {
				d.Report = tc.Report(name)
			}
		}
	}
	if tc.Verdict == core.VerdictLogicBug {
		d.Detail = fmt.Sprintf("  expected: %v\n  actual:   %v", tc.Expected.Canonical(), tc.Actual.Canonical())
	} else {
		d.Detail = fmt.Sprintf("  error: %v", tc.Err)
	}
	return d, true
}

// emitDetection prints one detection (live or restored) and writes its
// report file on first sight of the bug.
func emitDetection(name string, shard int, shardIndexed bool, d cmdDetection, o options, found map[string]bool) {
	tag := "UNATTRIBUTED"
	fresh := true
	if d.Bug != "" {
		tag = d.Bug
		fresh = !found[tag]
		found[tag] = true
	}
	if fresh && o.reportDir != "" && d.Bug != "" && d.Report != "" {
		path := o.reportDir + "/" + name + "-" + d.Bug + ".md"
		if werr := os.WriteFile(path, []byte(d.Report), 0o644); werr != nil {
			fmt.Fprintf(os.Stderr, "gqs: write report: %v\n", werr)
		}
	}
	if !fresh && !o.verbose {
		return
	}
	if shardIndexed {
		fmt.Printf("[%s] %s (shard %d, query #%d, %d steps)\n", d.Verdict, tag, shard, d.Seq, d.Steps)
	} else {
		fmt.Printf("[%s] %s (query #%d, %d steps)\n", d.Verdict, tag, d.Seq, d.Steps)
	}
	if d.Desc != "" {
		fmt.Printf("  %s\n", d.Desc)
	}
	if o.verbose {
		fmt.Printf("  query: %s\n", d.Query)
		fmt.Printf("%s\n", d.Detail)
	}
}

func encodeDetections(ds []cmdDetection) json.RawMessage {
	p, err := json.Marshal(ds)
	if err != nil {
		return nil
	}
	return p
}

func decodeDetections(data json.RawMessage) []cmdDetection {
	var ds []cmdDetection
	if len(data) > 0 {
		json.Unmarshal(data, &ds) //nolint:errcheck // corrupt payload ⇒ no replayed output
	}
	return ds
}

// encodeDetectionUnits / decodeDetectionUnits are the work-unit payload
// codec: one detection list per logical shard in the unit's range.
// decode always returns exactly count lists (corrupt payload ⇒ empty).
func encodeDetectionUnits(units [][]cmdDetection) json.RawMessage {
	p, err := json.Marshal(units)
	if err != nil {
		return nil
	}
	return p
}

func decodeDetectionUnits(data json.RawMessage, count int) [][]cmdDetection {
	out := make([][]cmdDetection, count)
	var units [][]cmdDetection
	if len(data) > 0 {
		json.Unmarshal(data, &units) //nolint:errcheck // corrupt payload ⇒ no replayed output
	}
	copy(out, units)
	return out
}

// runParallel is the sharded executor path (-workers >= 1): iterations
// fan out across a worker pool, detections are buffered per shard, and
// the output is printed in canonical shard order — so it is identical
// for every worker count at the same seed, and across kill/resume
// boundaries.
func runParallel(ctx context.Context, name string, o options, ck *core.Checkpointer) error {
	if _, err := gdb.ByName(name); err != nil {
		return err // reject unknown names before spinning up a pool
	}
	connect := gdb.NewFactory(gdb.FactoryConfig{
		GDB: name, Live: o.live, FlakyRate: o.flaky, Seed: o.seed, NoPlan: o.noPlan,
	})
	pcfg := core.ParallelConfig{
		Workers:    o.workers,
		Iterations: o.iterations,
		Batch:      o.resolvedBatch(),
		Runner:     runnerConfig(o),
	}
	fmt.Printf("=== testing %s (seed %d, %d iterations, %d workers, batch %d) ===\n",
		name, o.seed, o.iterations, o.workers, pcfg.Batch)

	// Detections are buffered per shard (the observer runs concurrently
	// across shards, sequentially within one — disjoint slots need no
	// lock) and rendered after the pool drains, in shard order. The
	// checkpoint hooks use the same slots at unit granularity: Payload
	// seals a finished unit's range of buffers into its journal record,
	// Restore refills a skipped unit's slots from the journal.
	logs := make([][]cmdDetection, o.iterations)
	meter := metrics.NewMeter()
	ckBefore := ck.Stats().Written
	hooks := core.DurableHooks{
		Payload: func(_ string, start, count int) json.RawMessage {
			return encodeDetectionUnits(logs[start : start+count])
		},
		Restore: func(u core.UnitRecord) {
			count := u.UnitCount()
			if u.Shard >= 0 && u.Shard+count <= len(logs) {
				copy(logs[u.Shard:u.Shard+count], decodeDetectionUnits(u.Payload, count))
			}
		},
	}
	ps := core.RunCheckpointedParallel(ctx, pcfg, name,
		func(shard int) (core.Target, error) { return connect(shard) },
		func(shard int, target core.Target, tc *core.TestCase) {
			meter.AddQuery()
			if d, ok := captureDetection(name, target, tc, o.reportDir); ok {
				logs[shard] = append(logs[shard], d)
			}
		}, ck, hooks)
	// Only iterations that actually ran count toward live throughput;
	// restored units were another run's work.
	meter.AddIterations(ps.Ran)
	meter.AddCheckpoints(ck.Stats().Written - ckBefore)

	found := map[string]bool{}
	for shard, dets := range logs {
		for _, d := range dets {
			emitDetection(name, shard, true, d, o, found)
		}
	}
	for range found {
		meter.AddBug()
	}
	stats := ps.Stats
	printSummary(name, stats, len(found))
	// The busy/wall ratio is the parallelism actually achieved: per-shard
	// busy time sums in stats.Elapsed while Wall is the pool's clock.
	parallelism := 0.0
	if ps.Wall > 0 {
		parallelism = stats.Elapsed.Seconds() / ps.Wall.Seconds()
	}
	fmt.Printf("%s: throughput: %s; %d workers, %.2fx parallelism\n",
		name, meter.Snapshot(), ps.Workers, parallelism)
	return nil
}

// run is the legacy sequential executor path (-workers 0): one runner,
// one RNG stream, detections printed as they happen. With a checkpoint,
// each completed iteration is journaled and a resumed run replays the
// restored iterations' output before continuing live.
func run(ctx context.Context, name string, o options, ck *core.Checkpointer) error {
	sim, err := gdb.ByName(name)
	if err != nil {
		return err
	}
	defer sim.Close()
	sim.SetLiveFaults(o.live)
	sim.SetPlanExecution(!o.noPlan)

	var target gdb.Connector = sim
	if o.flaky > 0 {
		target = gdb.NewFlaky(sim, gdb.FlakyConfig{
			Seed:           o.seed + 0x5eed,
			ErrorRate:      o.flaky,
			ResetErrorRate: o.flaky / 2,
		})
	}

	cfg := runnerConfig(o)

	fmt.Printf("=== testing %s (seed %d, %d iterations) ===\n", name, o.seed, o.iterations)
	found := map[string]bool{}
	var cur []cmdDetection // the in-flight iteration's detections
	hooks := core.DurableHooks{
		Payload: func(string, int, int) json.RawMessage {
			p := encodeDetections(cur)
			cur = nil
			return p
		},
		Restore: func(u core.UnitRecord) {
			for _, d := range decodeDetections(u.Payload) {
				emitDetection(name, 0, false, d, o, found)
			}
		},
	}
	stats, err := core.RunCheckpointedSequential(ctx, target, cfg, o.iterations, name, ck, hooks,
		func(tc *core.TestCase) {
			d, ok := captureDetection(name, target, tc, o.reportDir)
			if !ok {
				return
			}
			cur = append(cur, d)
			emitDetection(name, 0, false, d, o, found)
		})
	if err != nil {
		return err
	}
	printSummary(name, stats, len(found))
	return nil
}

// printSummary renders the per-GDB closing lines both executors share.
func printSummary(name string, stats core.Stats, distinct int) {
	fmt.Printf("%s: %d queries, %d passed, %d logic-bug reports, %d error reports, %d skipped; %d distinct bugs; %.1fs\n",
		name, stats.Queries, stats.Passes, stats.LogicBugs, stats.ErrorBugs, stats.Skips,
		distinct, stats.Elapsed.Seconds())
	rb := stats.Robust
	// The checkpoint counters get their own line; blank them before the
	// zero-comparison so a clean durable run doesn't print an all-zero
	// resilience line.
	ckWritten, ckBytes, ckFF := rb.CheckpointsWritten, rb.CheckpointBytes, rb.ResumeFastForwarded
	rb.CheckpointsWritten, rb.CheckpointBytes, rb.LastCheckpointAge, rb.ResumeFastForwarded = 0, 0, 0, 0
	if rb != (core.RobustnessStats{}) {
		fmt.Printf("%s: resilience: %d timeouts, %d retries (%d transient, %d give-ups), %d panics recovered, %d restarts (%d failed), %d breaker trips, %d abandoned graphs, %v downtime\n",
			name, rb.Timeouts, rb.Retries, rb.TransientErrors, rb.TransientGiveUps,
			rb.PanicsRecovered, rb.Restarts, rb.RestartFailures, rb.BreakerTrips,
			rb.AbandonedGraphs, rb.Downtime.Round(time.Millisecond))
	}
	if ckWritten > 0 || ckFF > 0 {
		fmt.Printf("%s: checkpoint: %d snapshots (%d bytes), %d units fast-forwarded on resume\n",
			name, ckWritten, ckBytes, ckFF)
	}
}
