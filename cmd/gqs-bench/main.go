// Command gqs-bench regenerates the tables and figures of the paper's
// evaluation section against the simulated GDBs.
//
// Usage:
//
//	gqs-bench -exp all
//	gqs-bench -exp table5 -n 10000
//	gqs-bench -exp table6 -rounds 500
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"gqs/internal/experiments"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment: table2, table3, table4, table5, table6, fig10..fig15, fig18, replay, falsealarms, ablation, bench, bench-regress, or all")
		seed       = flag.Int64("seed", 1, "random seed")
		iterations = flag.Int("iterations", 60, "GQS campaign iterations per GDB (table3/fig10-15, bench)")
		n          = flag.Int("n", 2000, "queries per tester for table5 (paper: 10000)")
		rounds     = flag.Int("rounds", 400, "oracle rounds per tester per GDB for table6/fig18")
		workers    = flag.Int("workers", 0, "worker-pool size for -exp bench (0 = GOMAXPROCS)")
		benchOut   = flag.String("bench-out", "", "write the -exp bench result to this JSON file; for -exp bench-regress, the current result to gate (default BENCH_pr10.json)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after the selected experiments) to this file")
	)
	flag.Parse()
	w := os.Stdout

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
			}
		}()
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table2") {
		experiments.Table2(w)
		fmt.Fprintln(w)
		ran = true
	}

	var campaign *experiments.Campaign
	needCampaign := want("table3") || want("table4") || want("replay") ||
		want("fig10") || want("fig11") || want("fig12") || want("fig13") ||
		want("fig14") || want("fig15")
	if needCampaign {
		cfg := experiments.DefaultCampaignConfig()
		cfg.Seed = *seed
		cfg.Iterations = *iterations
		if want("table3") {
			campaign = experiments.Table3(w, cfg)
			fmt.Fprintln(w)
		} else {
			campaign = experiments.RunGQSCampaign(cfg)
		}
		ran = true
	}
	if want("table4") {
		experiments.Table4(w, campaign)
		fmt.Fprintln(w)
		ran = true
	}
	if want("replay") || want("table4") {
		experiments.OracleReplay(w, campaign)
		fmt.Fprintln(w)
		ran = true
	}
	if want("table5") {
		experiments.Table5(w, *n, *seed)
		fmt.Fprintln(w)
		ran = true
	}
	var t6 map[string]map[string]*experiments.TesterCampaign
	if want("table6") || want("fig18") {
		t6 = experiments.Table6(w, *rounds, *seed)
		fmt.Fprintln(w)
		ran = true
	}
	if want("fig10") {
		experiments.Fig10(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig11") {
		experiments.Fig11(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig12") {
		experiments.Fig12(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig13") {
		experiments.Fig13(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig14") {
		experiments.Fig14(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig15") {
		experiments.Fig15(w, campaign)
		fmt.Fprintln(w)
	}
	if want("fig18") {
		experiments.Fig18(w, t6, *rounds)
		fmt.Fprintln(w)
	}
	if want("ablation") {
		experiments.Ablation(w, 10, *seed)
		fmt.Fprintln(w)
		ran = true
	}
	// bench runs only when asked by name: it repeats the whole campaign
	// twice, which would double the runtime of -exp all for no table.
	if *exp == "bench" {
		res := experiments.RunThroughputBench(w, *seed, *iterations, *workers)
		fmt.Fprintln(w)
		if *benchOut != "" {
			if err := res.WriteJSON(*benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
				os.Exit(1)
			}
		}
		if !res.IdenticalBugSets {
			fmt.Fprintln(os.Stderr, "gqs-bench: bug sets differ across worker counts — determinism contract broken")
			os.Exit(1)
		}
		ran = true
	}
	// bench-regress gates the recorded result against every other
	// BENCH_*.json in the working directory (>10% parallel-throughput
	// regression or a like-for-like bug-set mismatch fails the build).
	if *exp == "bench-regress" {
		cur := *benchOut
		if cur == "" {
			cur = "BENCH_pr10.json"
		}
		all, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
			os.Exit(1)
		}
		var prev []string
		for _, p := range all {
			if p != cur {
				prev = append(prev, p)
			}
		}
		if err := experiments.BenchRegress(w, cur, prev); err != nil {
			fmt.Fprintf(os.Stderr, "gqs-bench: %v\n", err)
			os.Exit(1)
		}
		ran = true
	}
	if want("falsealarms") {
		experiments.FalseAlarms(w, *rounds, *seed)
		fmt.Fprintln(w)
		ran = true
	}
	if !ran && !strings.HasPrefix(*exp, "fig") {
		fmt.Fprintf(os.Stderr, "gqs-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
