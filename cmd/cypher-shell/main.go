// Command cypher-shell is an interactive shell over the embedded Cypher
// engine, handy for exploring its semantics and for reproducing the
// paper's example queries by hand.
//
// Usage:
//
//	cypher-shell                 # empty database
//	cypher-shell -example        # preloaded with the Figure 2 movie graph
//	cypher-shell -random 7       # preloaded with a random graph (seed 7)
//	echo 'MATCH (n) RETURN n.name' | cypher-shell -example
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"gqs"
	"gqs/internal/graph"
)

func main() {
	var (
		example    = flag.Bool("example", false, "preload the movie example graph")
		randomSeed = flag.Int64("random", 0, "preload a random graph generated with this seed")
	)
	flag.Parse()

	db := gqs.NewDB()
	if *example {
		gqs.LoadExample(db)
		fmt.Println("loaded the movie example graph (2 users, 2 movies, 3 LIKE relationships)")
	}
	if *randomSeed != 0 {
		r := rand.New(rand.NewSource(*randomSeed))
		g, _ := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 30})
		if _, err := db.Execute(g.ToCypher()); err != nil {
			fmt.Fprintf(os.Stderr, "load: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded a random graph: %d nodes, %d relationships\n", g.NumNodes(), g.NumRels())
	}

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalHint()
	if interactive {
		fmt.Println(`type Cypher queries, ";" optional; "quit" to exit`)
	}
	for {
		if interactive {
			fmt.Print("cypher> ")
		}
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch strings.ToLower(strings.TrimSuffix(line, ";")) {
		case "":
			continue
		case "quit", "exit":
			return
		}
		res, err := db.Execute(line)
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		printResult(res)
	}
}

func printResult(r *gqs.Result) {
	if len(r.Columns) == 0 {
		fmt.Println("(no output)")
		return
	}
	fmt.Println(strings.Join(r.Columns, " | "))
	for _, row := range r.Rows {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("(%d rows)\n", r.Len())
}

// isTerminalHint is a cheap stdin-is-a-pipe heuristic without syscalls:
// when NO_PROMPT is set, or stat reports a pipe, prompts are suppressed.
func isTerminalHint() bool {
	if os.Getenv("NO_PROMPT") != "" {
		return false
	}
	fi, err := os.Stdin.Stat()
	if err != nil {
		return true
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
