// Complexity: synthesize ground-truth queries and measure them with the
// Table 5 metrics — a small standalone version of the paper's query
// complexity comparison, and a way to see what GQS-synthesized queries
// look like.
package main

import (
	"fmt"
	"math/rand"

	"gqs/internal/core"
	"gqs/internal/graph"
	"gqs/internal/metrics"
)

func main() {
	r := rand.New(rand.NewSource(7))
	g, schema := graph.Generate(r, graph.GenConfig{MaxNodes: 10, MaxRels: 40})
	fmt.Printf("generated graph: %d nodes, %d relationships\n\n", g.NumNodes(), g.NumRels())

	syn := core.NewSynthesizer(r, g, schema, core.DefaultConfig())
	var agg metrics.Aggregate
	var deepest *metrics.Features
	var deepestQuery string

	for i := 0; i < 50; i++ {
		gt := core.SelectGroundTruth(r, g, 6)
		sq, err := syn.Synthesize(gt)
		if err != nil {
			continue
		}
		f := metrics.Analyze(sq.Text)
		agg.Add(f)
		if deepest == nil || f.CrossRefs > deepest.CrossRefs {
			deepest, deepestQuery = f, sq.Text
		}
	}

	p, d, c, deps := agg.Averages()
	fmt.Printf("averages over %d synthesized queries (Table 5 metrics):\n", agg.N)
	fmt.Printf("  patterns:           %.2f  (paper: 8.14)\n", p)
	fmt.Printf("  expression depth:   %.2f  (paper: 7.82)\n", d)
	fmt.Printf("  clauses:            %.2f  (paper: 6.50)\n", c)
	fmt.Printf("  cross-clause deps:  %.2f  (paper: 56.02)\n", deps)

	fmt.Printf("\nmost dependency-heavy query (%d cross-clause references):\n%s\n",
		deepest.CrossRefs, deepestQuery)
}
