// Embedded: use the engine as an embeddable graph database for a
// recommender-style workload — the application domain the paper's
// introduction motivates (social networks and recommendation).
//
// The example builds a small social graph with write clauses, maintains
// it with SET/MERGE/DELETE, and answers recommendation queries with
// multi-hop patterns and aggregation.
package main

import (
	"fmt"

	"gqs"
)

func main() {
	db := gqs.NewDB()

	// Build the social graph.
	db.MustExecute(`CREATE
		(ann:PERSON {name: 'Ann', city: 'Zurich'}),
		(ben:PERSON {name: 'Ben', city: 'Zurich'}),
		(eva:PERSON {name: 'Eva', city: 'Bern'}),
		(tom:PERSON {name: 'Tom', city: 'Basel'}),
		(ann)-[:FOLLOWS {since: 2019}]->(ben),
		(ben)-[:FOLLOWS {since: 2020}]->(eva),
		(ann)-[:FOLLOWS {since: 2021}]->(eva),
		(eva)-[:FOLLOWS {since: 2022}]->(tom)`)

	// Products and purchases arrive incrementally; MERGE keeps them
	// idempotent.
	for _, purchase := range []struct {
		person, product string
		stars           int
	}{
		{"Ben", "coffee grinder", 5},
		{"Eva", "coffee grinder", 4},
		{"Eva", "espresso cups", 5},
		{"Tom", "espresso cups", 3},
		{"Tom", "drip kettle", 5},
	} {
		db.MustExecute(fmt.Sprintf(`MERGE (pr:PRODUCT {name: '%s'})`, purchase.product))
		db.MustExecute(fmt.Sprintf(`
			MATCH (p:PERSON {name: '%s'}), (pr:PRODUCT {name: '%s'})
			CREATE (p)-[:BOUGHT {stars: %d}]->(pr)`,
			purchase.person, purchase.product, purchase.stars))
	}

	// Recommendation: products that people Ann follows (directly or one
	// hop away) rated 4+, which Ann has not bought.
	res := db.MustExecute(`
		MATCH (ann:PERSON {name: 'Ann'})-[:FOLLOWS]->()-[:FOLLOWS]-(friend:PERSON)
		MATCH (friend)-[b:BOUGHT]->(pr:PRODUCT)
		WHERE b.stars >= 4
		OPTIONAL MATCH (ann)-[own:BOUGHT]->(pr)
		WITH pr, own, avg(b.stars) AS score, collect(friend.name) AS raters
		WHERE own IS NULL
		RETURN pr.name AS product, score, raters
		ORDER BY score DESC`)
	fmt.Println("recommendations for Ann:")
	for i := 0; i < res.Len(); i++ {
		row := res.RowMap(i)
		fmt.Printf("  %-15s score %.1f from %v\n",
			row["product"].AsString(), row["score"].AsFloat(), row["raters"])
	}

	// Graph maintenance: Tom deletes his account (DETACH DELETE), and a
	// label marks power buyers.
	db.MustExecute(`MATCH (p:PERSON) WHERE p.name = 'Tom' DETACH DELETE p`)
	db.MustExecute(`MATCH (p:PERSON)-[b:BOUGHT]->() WITH p, count(*) AS n WHERE n >= 2 SET p:POWER_BUYER`)

	res = db.MustExecute(`MATCH (p:POWER_BUYER) RETURN p.name AS name`)
	fmt.Println("\npower buyers after cleanup:")
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  %s\n", res.RowMap(i)["name"].AsString())
	}

	// Database introspection via CALL.
	res = db.MustExecute(`CALL db.labels()`)
	fmt.Println("\nlabels in the store:")
	for i := 0; i < res.Len(); i++ {
		fmt.Printf("  %s\n", res.Rows[i][0].AsString())
	}
}
