// Quickstart: open the embedded Cypher database, load the paper's movie
// example (Figure 2), and run both of the figure's queries.
package main

import (
	"fmt"

	"gqs"
)

func main() {
	db := gqs.NewDB()
	gqs.LoadExample(db)

	// The simple MATCH-RETURN form of Figure 2.
	fmt.Println("movies in the database:")
	res := db.MustExecute(`MATCH (m:MOVIE) RETURN m.name AS name, m.year AS year ORDER BY year`)
	for i := 0; i < res.Len(); i++ {
		row := res.RowMap(i)
		fmt.Printf("  %s (%v)\n", row["name"].AsString(), row["year"])
	}

	// The complex form: WHERE, UNWIND, WITH DISTINCT, RETURN.
	fmt.Println("\ngenres of movies Alice rated at least 8 (Figure 2's second query):")
	res = db.MustExecute(`MATCH (p :USER)-[r :LIKE]->(m :MOVIE)
		WHERE p.name = 'Alice' AND r.rating >= 8
		UNWIND m.genre AS LikedGenre
		WITH DISTINCT m.name AS MovieName, LikedGenre
		RETURN MovieName, LikedGenre`)
	for i := 0; i < res.Len(); i++ {
		row := res.RowMap(i)
		fmt.Printf("  %s: %s\n", row["MovieName"].AsString(), row["LikedGenre"].AsString())
	}

	// Aggregation.
	res = db.MustExecute(`MATCH (p:USER)-[l:LIKE]->() RETURN p.name AS user, avg(l.rating) AS avgRating ORDER BY user`)
	fmt.Println("\naverage ratings:")
	for i := 0; i < res.Len(); i++ {
		row := res.RowMap(i)
		fmt.Printf("  %s: %.1f\n", row["user"].AsString(), row["avgRating"].AsFloat())
	}
}
