// Bughunt: the paper's headline use case. Run the GQS tester against a
// (simulated) graph database and report the logic bugs it finds, each
// with the synthesized query, the ground-truth expected result, and what
// the database actually returned.
package main

import (
	"fmt"
	"os"

	"gqs"
)

func main() {
	target := "falkordb"
	if len(os.Args) > 1 {
		target = os.Args[1]
	}
	sim, err := gqs.OpenSim(target)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer sim.Close()

	fmt.Printf("hunting logic bugs in %s...\n\n", target)
	tester := gqs.NewTester(sim, gqs.WithSeed(2025), gqs.WithGraphSize(12, 50))

	shown := map[string]bool{}
	stats, err := tester.Run(20, func(tc *gqs.TestCase) {
		if tc.Verdict != gqs.VerdictLogicBug {
			return
		}
		bug := sim.TriggeredBug()
		if bug == nil || shown[bug.ID] {
			return
		}
		shown[bug.ID] = true
		fmt.Printf("=== %s: %s\n", bug.ID, bug.Description)
		fmt.Printf("query (%d synthesis steps):\n  %s\n", tc.Steps, tc.Query)
		fmt.Printf("expected: %v\n", tc.Expected.Canonical())
		fmt.Printf("actual:   %v\n\n", tc.Actual.Canonical())
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %d queries, %d passed, %d logic-bug reports, %d distinct logic bugs shown\n",
		stats.Queries, stats.Passes, stats.LogicBugs, len(shown))
}
