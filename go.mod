module gqs

go 1.22
