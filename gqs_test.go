package gqs

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
	"time"
)

func TestDBQuickstart(t *testing.T) {
	db := NewDB()
	LoadExample(db)
	r := db.MustExecute(`MATCH (p:USER)-[l:LIKE]->(m:MOVIE)
		WHERE p.name = 'Alice' AND l.rating >= 8
		RETURN m.name AS name, m.year AS year`)
	if r.Len() != 1 || r.Rows[0][0].AsString() != "Heat" {
		t.Fatalf("quickstart query: %v", r)
	}
	if _, err := db.Execute(`THIS IS NOT CYPHER`); err == nil {
		t.Error("bad query must error")
	}
}

func TestMustExecutePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustExecute must panic on error")
		}
	}()
	NewDB().MustExecute(`(`)
}

func TestOpenSim(t *testing.T) {
	for _, name := range []string{"neo4j", "memgraph", "kuzu", "falkordb", "reference"} {
		if _, err := OpenSim(name); err != nil {
			t.Errorf("OpenSim(%s): %v", name, err)
		}
	}
	if _, err := OpenSim("sqlite"); err == nil {
		t.Error("unknown sim must error")
	}
}

func TestTesterEndToEnd(t *testing.T) {
	sim, err := OpenSim("falkordb")
	if err != nil {
		t.Fatal(err)
	}
	tester := NewTester(sim,
		WithSeed(3),
		WithGraphSize(10, 30),
		WithMaxSteps(7),
		WithQueriesPerGraph(5),
	)
	bugs := 0
	stats, err := tester.Run(10, func(tc *TestCase) {
		if tc.Verdict == VerdictLogicBug || tc.Verdict == VerdictErrorBug {
			bugs++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries ran")
	}
	if bugs == 0 {
		t.Error("the falkordb sim should yield bugs")
	}
}

// TestShardedTesterEndToEnd: the public sharded API fans iterations
// across a worker pool, and the merged stats match a one-worker run of
// the same seed (wall-clock fields aside).
func TestShardedTesterEndToEnd(t *testing.T) {
	factory := func(shard int) (Target, error) { return OpenSim("falkordb") }
	run := func(workers int) Stats {
		t.Helper()
		tester := NewShardedTester(factory,
			WithSeed(3),
			WithGraphSize(10, 30),
			WithMaxSteps(7),
			WithQueriesPerGraph(5),
			WithWorkers(workers),
		)
		cases := 0
		stats, err := tester.Run(8, func(tc *TestCase) { cases++ })
		if err != nil {
			t.Fatal(err)
		}
		if cases != stats.Queries {
			t.Fatalf("report saw %d cases, stats count %d", cases, stats.Queries)
		}
		stats.Elapsed = 0
		stats.Robust.Downtime = 0
		return stats
	}
	one, four := run(1), run(4)
	if one != four {
		t.Fatalf("sharded stats differ across worker counts:\n  workers=1: %+v\n  workers=4: %+v", one, four)
	}
	if one.Queries == 0 {
		t.Fatal("no queries ran")
	}
}

// TestTesterResilienceOptions: the public API drives the hardened runner
// against live faults — the campaign survives real hangs and reports what
// the resilience layer absorbed.
func TestTesterResilienceOptions(t *testing.T) {
	sim, err := OpenSim("falkordb")
	if err != nil {
		t.Fatal(err)
	}
	sim.SetLiveFaults(true)
	tester := NewTester(sim,
		WithSeed(3),
		WithGraphSize(10, 30),
		WithTimeout(25*time.Millisecond),
		WithRetries(1),
	)
	stats, err := tester.Run(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries == 0 {
		t.Fatal("no queries ran")
	}
	if stats.Robust.Timeouts == 0 && stats.Robust.PanicsRecovered == 0 {
		t.Errorf("live falkordb faults should exercise the resilience layer: %+v", stats.Robust)
	}
}

func TestSynthesize(t *testing.T) {
	q, expected, err := Synthesize(42, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if q == "" || expected == nil || len(expected.Columns) == 0 {
		t.Fatalf("Synthesize returned %q / %v", q, expected)
	}
	// Determinism.
	q2, _, _ := Synthesize(42, 10, 30)
	if q != q2 {
		t.Error("Synthesize must be deterministic per seed")
	}
}

// ckStatsScrub zeroes the wall-clock and checkpoint-accounting fields so
// durable and plain campaign stats can be compared for equality.
func ckStatsScrub(s Stats) Stats {
	s.Elapsed = 0
	s.Robust.Downtime = 0
	s.Robust.ResumeFastForwarded = 0
	s.Robust.CheckpointsWritten = 0
	s.Robust.CheckpointBytes = 0
	s.Robust.LastCheckpointAge = 0
	return s
}

// TestTesterRunContextCheckpointResume: the public checkpoint API — a
// campaign canceled mid-run resumes from its journal and converges on
// the stats an uninterrupted run produces, on both tester shapes.
func TestTesterRunContextCheckpointResume(t *testing.T) {
	const iters = 6
	shapes := []struct {
		name string
		make func(opts ...TesterOption) *Tester
	}{
		{"sequential", func(opts ...TesterOption) *Tester {
			sim, err := OpenSim("falkordb")
			if err != nil {
				t.Fatal(err)
			}
			return NewTester(sim, opts...)
		}},
		{"sharded", func(opts ...TesterOption) *Tester {
			factory := func(shard int) (Target, error) { return OpenSim("falkordb") }
			return NewShardedTester(factory, append(opts, WithWorkers(2))...)
		}},
	}
	for _, shape := range shapes {
		shape := shape
		t.Run(shape.name, func(t *testing.T) {
			base := []TesterOption{WithSeed(3), WithGraphSize(10, 30), WithMaxSteps(7), WithQueriesPerGraph(5)}
			want, err := shape.make(base...).RunContext(context.Background(), iters, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Cancel half-way through the case stream: late enough that some
			// work units have completed (and flushed, with Every=1), early
			// enough that queued units are still pending.
			cancelAt := want.Queries / 2
			want = ckStatsScrub(want)

			path := filepath.Join(t.TempDir(), "tester.journal")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cases := 0
			durable := append(append([]TesterOption{}, base...), WithCheckpoint(path, 1))
			partial, err := shape.make(durable...).RunContext(ctx, iters, func(*TestCase) {
				if cases++; cases == cancelAt {
					cancel()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if partial.Queries >= want.Queries {
				t.Fatalf("cancellation did not interrupt: partial ran %d of %d queries", partial.Queries, want.Queries)
			}

			resumed, err := shape.make(append(durable, WithResume())...).RunContext(context.Background(), iters, nil)
			if err != nil {
				t.Fatal(err)
			}
			if resumed.Robust.ResumeFastForwarded == 0 {
				t.Error("resume restored nothing")
			}
			if got := ckStatsScrub(resumed); got != want {
				t.Errorf("resumed stats diverge:\n  resumed: %+v\n  want:    %+v", got, want)
			}
		})
	}
}

// TestTesterResumeRefusesChangedSeed: WithResume under a changed
// configuration is refused with ErrFingerprintMismatch.
func TestTesterResumeRefusesChangedSeed(t *testing.T) {
	sim, err := OpenSim("reference")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tester.journal")
	if _, err := NewTester(sim, WithSeed(3), WithCheckpoint(path, 1)).RunContext(context.Background(), 2, nil); err != nil {
		t.Fatal(err)
	}
	_, err = NewTester(sim, WithSeed(4), WithCheckpoint(path, 1), WithResume()).RunContext(context.Background(), 2, nil)
	if !errors.Is(err, ErrFingerprintMismatch) {
		t.Fatalf("resume with a changed seed: err = %v, want ErrFingerprintMismatch", err)
	}
}
